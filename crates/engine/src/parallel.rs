//! Parallel bottom-up subtree compilation with a **bit-identical** output
//! contract.
//!
//! Every bottom-up pass of the lineage pipeline — the automaton run, the
//! Theorem 6.11 d-SDNNF gate construction, and the evaluation passes over
//! the resulting circuit — has the same shape: disjoint subtrees are
//! independent, and only the "spine" of nodes above the chosen cut points
//! sequentializes. This module exploits that:
//!
//! 1. [`SubtreePlan`] cuts the tree into fragments of comparable size (one
//!    contiguous post-order segment each) plus the spine above them;
//! 2. worker threads compile fragments independently (scheduled by the
//!    work-stealing pool in `pool`);
//! 3. a deterministic merge replays each fragment into the global arenas
//!    **in global post-order**, then runs the spine sequentially.
//!
//! The determinism contract: because `Circuit` and `Vtree` are append-only
//! arenas and a subtree's nodes occupy a contiguous post-order segment, the
//! sequential construction allocates a fragment's gates as one contiguous id
//! block that references only the block itself plus the two constant gates.
//! Replaying fragments in post-order therefore reproduces the sequential
//! gate stream *byte for byte* — same gates, same ids, same operand order,
//! same output — at every thread count, with no iteration-order leakage
//! (worker completion order never influences ids; only the tree shape
//! does). `tests` and the umbrella `tests/parallel_differential.rs` pin
//! this gate-by-gate against [`treelineage_automata::compile_structured_dnnf`].
//!
//! The evaluation passes ([`ParallelDnnf::probability`] /
//! [`ParallelDnnf::wmc`] / [`ParallelDnnf::model_count`]) reuse the same
//! partition: each fragment's gate range is self-contained, so workers
//! evaluate ranges concurrently and the spine finishes on the caller's
//! thread. All arithmetic is exact (`Rational` / `BigUint`), so the values
//! are identical to the sequential pass, not merely close.

use crate::pool::run_tasks;
use crate::EngineConfig;
use std::collections::BTreeMap;
use std::collections::HashMap;
use treelineage_automata::{
    compile_structured_dnnf_traced, BinaryTree, NodeAnnotation, NodeId, State, StructuredDnnf,
    StructuredDnnfError, TreeAutomaton, UncertainTree,
};
use treelineage_circuit::{Circuit, Dnnf, Gate, GateId, VarId, Vtree, VtreeId, VtreeNode};
use treelineage_num::{BigUint, ErrorInterval, Rational};
use treelineage_telemetry::Telemetry;

/// Fragments below this size are not worth a task of their own: the replay
/// and scheduling overhead would exceed the construction work.
const MIN_FRAGMENT_NODES: usize = 64;

/// A partition of the tree into disjoint subtrees ("fragments") plus the
/// spine of nodes above all cut points. Fragment roots are the cut points;
/// every node belongs to exactly one fragment or to the spine.
#[derive(Clone, Debug)]
pub(crate) struct SubtreePlan {
    /// Cut points (fragment roots), each owning its whole subtree.
    pub(crate) cuts: Vec<NodeId>,
    /// `owner[node] = Some(i)` if the node lies in fragment `i` (including
    /// its root), `None` for spine nodes.
    pub(crate) owner: Vec<Option<u32>>,
}

impl SubtreePlan {
    /// Cuts `tree` into at least two fragments of roughly
    /// `node_count / (threads * 4)` nodes each (never below
    /// [`MIN_FRAGMENT_NODES`]; `grain_override > 0` fixes the grain
    /// explicitly), or returns `None` when the tree is too small to be
    /// worth splitting. The plan depends only on the tree shape and the
    /// grain — never on scheduling — so the merge order is deterministic.
    pub(crate) fn cut(
        tree: &BinaryTree,
        threads: usize,
        grain_override: usize,
    ) -> Option<SubtreePlan> {
        let n = tree.node_count();
        if threads <= 1 {
            return None;
        }
        let grain = if grain_override > 0 {
            grain_override
        } else if n < 2 * MIN_FRAGMENT_NODES {
            return None;
        } else {
            // 4 fragments per worker gives the work-stealing pool enough
            // slack to balance subtrees of unequal size.
            (n / (threads * 4)).max(MIN_FRAGMENT_NODES)
        };
        let mut sizes = vec![0usize; n];
        for node in tree.post_order() {
            sizes[node.0] = match tree.children(node) {
                None => 1,
                Some((l, r)) => 1 + sizes[l.0] + sizes[r.0],
            };
        }
        let mut cuts = Vec::new();
        let mut owner: Vec<Option<u32>> = vec![None; n];
        let mut stack = vec![tree.root()];
        while let Some(node) = stack.pop() {
            if sizes[node.0] <= grain {
                let index = cuts.len() as u32;
                cuts.push(node);
                for member in tree.post_order_from(node) {
                    owner[member.0] = Some(index);
                }
            } else {
                // A node larger than the grain has children (leaves have
                // size 1 ≤ grain); it stays on the spine.
                let (l, r) = tree.children(node).expect("grain ≥ 1 keeps leaves cut");
                stack.push(r);
                stack.push(l);
            }
        }
        if cuts.len() < 2 {
            return None;
        }
        Some(SubtreePlan { cuts, owner })
    }
}

/// The fragment ranges of a circuit produced by the parallel compiler: each
/// `[start, end)` gate-id range is *self-contained* — gates in the range
/// reference only the range itself plus the two global constant gates — so
/// evaluation passes can process ranges on independent threads.
#[derive(Clone, Debug, Default)]
pub struct CircuitPartition {
    fragments: Vec<(usize, usize)>,
}

impl CircuitPartition {
    /// The self-contained `[start, end)` gate ranges.
    pub fn fragments(&self) -> &[(usize, usize)] {
        &self.fragments
    }

    /// `true` when the partition carries no parallelizable range (the
    /// circuit was compiled sequentially); evaluation then runs in one
    /// pass on the caller's thread.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }
}

/// A certified smooth d-SDNNF plus the fragment partition of its circuit:
/// the artifact of [`compile_structured_dnnf_parallel`]. Dereference to the
/// wrapped [`StructuredDnnf`] for the circuit/vtree accessors; the
/// evaluation methods here take a thread count and run the bottom-up pass
/// fragment-parallel (exact arithmetic, so results equal the sequential
/// pass at every thread count).
#[derive(Clone, Debug)]
pub struct ParallelDnnf {
    structured: StructuredDnnf,
    partition: CircuitPartition,
    /// Observes the evaluation passes (pool task/steal counters); carried
    /// from the compiling config so cached artifacts keep reporting into
    /// the session's registry. Never influences any computed value.
    telemetry: Telemetry,
}

impl ParallelDnnf {
    /// Wraps a sequentially compiled artifact (empty partition: every
    /// evaluation runs sequentially; no telemetry sink).
    pub fn sequential(structured: StructuredDnnf) -> Self {
        ParallelDnnf {
            structured,
            partition: CircuitPartition::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Replaces the telemetry sink the evaluation passes record into.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The wrapped certified d-SDNNF.
    pub fn structured(&self) -> &StructuredDnnf {
        &self.structured
    }

    /// The fragment partition of the circuit.
    pub fn partition(&self) -> &CircuitPartition {
        &self.partition
    }

    /// Number of gates of the circuit.
    pub fn size(&self) -> usize {
        self.structured.size()
    }

    /// Acceptance probability under independent event probabilities;
    /// fragment-parallel over `threads` workers.
    pub fn probability(
        &self,
        prob: &(dyn Fn(usize) -> Rational + Sync),
        threads: usize,
    ) -> Rational {
        run_pass(
            self.structured.dnnf().circuit(),
            &self.partition,
            threads,
            &self.telemetry,
            &ProbabilityPass { prob },
        )
    }

    /// Weighted model count with general per-literal weights (the circuit
    /// is smooth by construction, so one pass suffices); fragment-parallel.
    pub fn wmc(
        &self,
        pos: &(dyn Fn(usize) -> Rational + Sync),
        neg: &(dyn Fn(usize) -> Rational + Sync),
        threads: usize,
    ) -> Rational {
        run_pass(
            self.structured.dnnf().circuit(),
            &self.partition,
            threads,
            &self.telemetry,
            &WmcPass { pos, neg },
        )
    }

    /// Number of accepting event valuations (one integer pass thanks to
    /// smoothness-by-construction); fragment-parallel.
    pub fn model_count(&self, threads: usize) -> BigUint {
        run_pass(
            self.structured.dnnf().circuit(),
            &self.partition,
            threads,
            &self.telemetry,
            &CountPass,
        )
    }

    /// The float fast-path of [`ParallelDnnf::probability`]: the same
    /// fragment-parallel pass in certified [`ErrorInterval`] arithmetic.
    /// The returned interval is guaranteed to contain the exact rational
    /// answer, and — like every pass here — it is *identical at every
    /// thread count*: each gate's interval depends only on its input gates'
    /// intervals and the fixed operand order, and parallelism only changes
    /// which thread computes a gate, never the gate's inputs.
    pub fn probability_interval(
        &self,
        prob: &(dyn Fn(usize) -> ErrorInterval + Sync),
        threads: usize,
    ) -> ErrorInterval {
        run_pass(
            self.structured.dnnf().circuit(),
            &self.partition,
            threads,
            &self.telemetry,
            &IntervalProbabilityPass { prob },
        )
    }

    /// The float fast-path of [`ParallelDnnf::wmc`], with the same
    /// containment and thread-count-independence guarantees as
    /// [`ParallelDnnf::probability_interval`].
    pub fn wmc_interval(
        &self,
        pos: &(dyn Fn(usize) -> ErrorInterval + Sync),
        neg: &(dyn Fn(usize) -> ErrorInterval + Sync),
        threads: usize,
    ) -> ErrorInterval {
        run_pass(
            self.structured.dnnf().circuit(),
            &self.partition,
            threads,
            &self.telemetry,
            &IntervalWmcPass { pos, neg },
        )
    }
}

/// A compiled fragment: the gates and vtree nodes the sequential
/// construction would allocate for this subtree, with local ids (constants
/// at 0/1, everything else offset by 2 at replay time).
struct Fragment {
    circuit: Circuit,
    vtree: Vtree,
    /// Per automaton state, the (local) gate of the fragment root.
    root_gates: Vec<GateId>,
    /// The (local) vtree node covering the fragment root's events, if any.
    root_vnode: Option<VtreeId>,
}

/// The full post-order content of a fragment subtree — `(label, is-leaf,
/// event annotation)` per node. Two subtrees with equal keys have equal
/// shape, labels and events, so [`compile_fragment`] produces byte-identical
/// output for them (its gate stream is a pure function of this content and
/// the automaton's memoized transitions). Keys are compared in full — no
/// hash shortcut decides reuse.
type FragmentKey = Vec<(usize, bool, Option<(usize, usize, usize)>)>;

fn fragment_key(tree: &UncertainTree, root: NodeId) -> FragmentKey {
    tree.tree()
        .post_order_from(root)
        .into_iter()
        .map(|node| {
            let annotation = match tree.annotation(node) {
                NodeAnnotation::Fixed => None,
                NodeAnnotation::Event {
                    event,
                    if_true,
                    if_false,
                } => Some((event, if_true, if_false)),
            };
            (
                tree.tree().label(node),
                tree.tree().is_leaf(node),
                annotation,
            )
        })
        .collect()
}

/// Compiled fragments of one artifact, keyed by subtree content: the unit
/// of reuse for incremental recompilation. After an update, fragments whose
/// post-order content (shape, labels, events) is unchanged hit the library
/// and skip [`compile_fragment`] entirely; only dirty fragments recompile,
/// and the deterministic merge replays as usual. Validity is the caller's
/// contract: a library may only be replayed against the *same* compiled
/// query machine that produced it (state numbering is machine-history
/// dependent), with an automaton whose state count has only grown — the
/// session layer guards both.
#[derive(Clone, Default)]
pub(crate) struct FragmentLibrary {
    fragments: HashMap<FragmentKey, std::sync::Arc<Fragment>>,
}

impl FragmentLibrary {
    /// Number of fragments held.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.fragments.len()
    }
}

/// How much of a cached compile was reused vs recompiled — the dirty-set
/// accounting behind the session's `fragments_recompiled` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct RecompileStats {
    /// Fragments in the plan (0 for a sequential compile).
    pub(crate) total: usize,
    /// Fragments served from the library.
    pub(crate) reused: usize,
    /// Fragments compiled fresh (dirty, or no library offered).
    pub(crate) recompiled: usize,
}

/// The artifact of [`compile_with_pool_cached`]: the compiled d-SDNNF, the
/// fragment library to seed the *next* incremental compile with, and the
/// reuse accounting.
pub(crate) struct CachedCompile {
    pub(crate) artifact: ParallelDnnf,
    pub(crate) library: FragmentLibrary,
    pub(crate) stats: RecompileStats,
}

/// Compiles the provenance of a deterministic automaton on an uncertain
/// tree into a certified smooth d-SDNNF, splitting the tree into disjoint
/// subtrees compiled on `config.threads` worker threads. The output is
/// byte-identical to [`treelineage_automata::compile_structured_dnnf`] at
/// every thread count (see the module docs for why); with `threads <= 1` or
/// a small tree it simply delegates to the sequential compiler.
pub fn compile_structured_dnnf_parallel(
    automaton: &TreeAutomaton,
    tree: &UncertainTree,
    config: &EngineConfig,
) -> Result<ParallelDnnf, StructuredDnnfError> {
    compile_with_pool(automaton, tree, config, config.threads)
}

/// [`compile_structured_dnnf_parallel`] with the fragment *plan*
/// (`config.threads`) decoupled from the worker pool actually used
/// (`pool_threads`). The session layer compiles with `pool_threads = 1`
/// when a batch already saturates the pool with one task per (query,
/// instance) pair — the cached artifact still carries the partition its
/// session-level thread count plans for, so later lone-request batches get
/// fragment-parallel evaluation. The output is identical either way: the
/// plan, not the pool, determines every id.
pub(crate) fn compile_with_pool(
    automaton: &TreeAutomaton,
    tree: &UncertainTree,
    config: &EngineConfig,
    pool_threads: usize,
) -> Result<ParallelDnnf, StructuredDnnfError> {
    compile_with_pool_cached(automaton, tree, config, pool_threads, None).map(|c| c.artifact)
}

/// [`compile_with_pool`] with fragment reuse: fragments of `previous` whose
/// subtree content is unchanged are replayed instead of recompiled, and the
/// output is **byte-identical** to a compile without the library (same
/// gates, ids, operand order, vtree) — reuse changes which thread produces
/// a block of gates, never the gates. Preconditions on `previous` (enforced
/// by the session layer): it was produced by this function against the same
/// compiled query machine, whose state count can only have grown since.
pub(crate) fn compile_with_pool_cached(
    automaton: &TreeAutomaton,
    tree: &UncertainTree,
    config: &EngineConfig,
    pool_threads: usize,
    previous: Option<&FragmentLibrary>,
) -> Result<CachedCompile, StructuredDnnfError> {
    let telemetry = &config.telemetry;
    let plan = match SubtreePlan::cut(tree.tree(), config.threads, config.fragment_grain) {
        Some(plan) => plan,
        None => {
            return compile_structured_dnnf_traced(automaton, tree, telemetry).map(|s| {
                CachedCompile {
                    artifact: ParallelDnnf::sequential(s).with_telemetry(telemetry.clone()),
                    library: FragmentLibrary::default(),
                    stats: RecompileStats::default(),
                }
            })
        }
    };
    // Same validation, in the same order, as the sequential compiler: the
    // parallel path must fail on exactly the inputs (and with exactly the
    // errors) the sequential path fails on.
    if !automaton.is_deterministic() {
        return Err(StructuredDnnfError::NondeterministicAutomaton);
    }
    let mut seen_events: BTreeMap<usize, usize> = BTreeMap::new();
    for node in 0..tree.tree().node_count() {
        if let NodeAnnotation::Event { event, .. } = tree.annotation(NodeId(node)) {
            *seen_events.entry(event).or_insert(0) += 1;
        }
    }
    if let Some((&event, _)) = seen_events.iter().find(|(_, &count)| count > 1) {
        return Err(StructuredDnnfError::SharedEvent { event });
    }

    let states = automaton.state_count();

    // Phase 1: fragments, in parallel — but first settle, per cut, whether
    // the library already holds this subtree's compile. The key is the full
    // post-order content, so a hit is exactly "this subtree is untouched".
    let keys: Vec<FragmentKey> = plan
        .cuts
        .iter()
        .map(|&cut| fragment_key(tree, cut))
        .collect();
    let cached: Vec<Option<std::sync::Arc<Fragment>>> = keys
        .iter()
        .map(|key| previous.and_then(|lib| lib.fragments.get(key).cloned()))
        .collect();
    let dirty: Vec<usize> = (0..plan.cuts.len())
        .filter(|&i| cached[i].is_none())
        .collect();
    let stats = RecompileStats {
        total: plan.cuts.len(),
        reused: plan.cuts.len() - dirty.len(),
        recompiled: dirty.len(),
    };

    // Only dirty fragments hit the pool. Results land in dirty order, so
    // nothing downstream depends on completion order.
    let compiled: Vec<Fragment> = {
        let mut span = telemetry.span("dsdnnf_fragments");
        span.label("fragments", plan.cuts.len());
        span.label("reused", stats.reused);
        run_tasks(pool_threads, dirty.len(), telemetry, |j| {
            // On a pool worker this parents to the `dsdnnf_fragments` span
            // through the context captured at spawn time; inline it nests
            // via the caller's span stack. Either way: one connected trace.
            let mut fragment_span = telemetry.span("dsdnnf_fragment");
            fragment_span.label("fragment", dirty[j]);
            compile_fragment(automaton, tree, plan.cuts[dirty[j]], states)
        })
    };
    let mut compiled = compiled.into_iter();
    let fragments: Vec<std::sync::Arc<Fragment>> = cached
        .into_iter()
        .map(|slot| match slot {
            Some(fragment) => fragment,
            None => std::sync::Arc::new(compiled.next().expect("one compile per dirty cut")),
        })
        .collect();
    let library = FragmentLibrary {
        fragments: keys.into_iter().zip(fragments.iter().cloned()).collect(),
    };

    // Phase 2: deterministic merge — walk the global post-order, replay
    // each fragment at its root's position, run spine nodes inline.
    let _merge_span = telemetry.span("dsdnnf_merge");
    let mut circuit = Circuit::new();
    let false_gate = circuit.constant(false);
    // The true constant must exist at id 1 (the helper and the fragment
    // replay both rely on the 0/1 constant convention).
    let _true_gate = circuit.constant(true);
    let mut vtree = Vtree::new();
    let mut partition = CircuitPartition::default();
    // Gate vector / vtree node per *pending* node (fragment roots and spine
    // nodes whose parent has not been processed yet).
    let mut gates: HashMap<usize, Vec<GateId>> = HashMap::new();
    let mut vnodes: HashMap<usize, Option<VtreeId>> = HashMap::new();

    for node in tree.tree().post_order() {
        match plan.owner[node.0] {
            Some(fragment_index) => {
                if plan.cuts[fragment_index as usize] != node {
                    continue; // interior fragment node: already compiled by its worker
                }
                let fragment = &fragments[fragment_index as usize];
                let gate_offset = circuit.size();
                replay_circuit(&mut circuit, &fragment.circuit);
                partition.fragments.push((gate_offset, circuit.size()));
                let vtree_offset = vtree.node_count();
                replay_vtree(&mut vtree, &fragment.vtree);
                let map = |g: GateId| {
                    if g.0 < 2 {
                        GateId(g.0) // the two constants are global
                    } else {
                        GateId(gate_offset + g.0 - 2)
                    }
                };
                // A library fragment may predate states the automaton has
                // interned since; those are unreachable in its (unchanged)
                // subtree, so pad its root gates with `false`.
                debug_assert!(fragment.root_gates.len() <= states);
                let mut root_gates: Vec<GateId> =
                    fragment.root_gates.iter().map(|&g| map(g)).collect();
                root_gates.resize(states, false_gate);
                gates.insert(node.0, root_gates);
                vnodes.insert(
                    node.0,
                    fragment.root_vnode.map(|v| VtreeId(vtree_offset + v.0)),
                );
            }
            None => {
                // Spine node: both children are pending (fragment roots or
                // spine nodes), so take their entries and run the
                // sequential per-node construction.
                let (left, right) = tree
                    .tree()
                    .children(node)
                    .expect("spine nodes are larger than any fragment, hence internal");
                let left_gates = gates.remove(&left.0).expect("post-order: child first");
                let right_gates = gates.remove(&right.0).expect("post-order: child first");
                let left_v = vnodes.remove(&left.0).expect("post-order: child first");
                let right_v = vnodes.remove(&right.0).expect("post-order: child first");
                let (node_gates, own_v) = internal_node_step(
                    automaton,
                    tree,
                    node,
                    states,
                    &left_gates,
                    &right_gates,
                    left_v,
                    right_v,
                    &mut circuit,
                    &mut vtree,
                );
                gates.insert(node.0, node_gates);
                vnodes.insert(node.0, own_v);
            }
        }
    }

    let root = tree.tree().root();
    let root_gates = &gates[&root.0];
    let accepting: Vec<GateId> = automaton
        .accepting_states()
        .iter()
        .map(|&q| root_gates[q])
        .filter(|&g| g != false_gate)
        .collect();
    let output = match accepting.len() {
        0 => false_gate,
        1 => accepting[0],
        _ => circuit.or(accepting),
    };
    circuit.set_output(output);
    if let Some(v) = vnodes[&root.0] {
        vtree.set_root(v);
    }
    let dnnf = Dnnf::from_trusted_circuit(circuit)
        .expect("the structured construction is decomposable by construction");
    Ok(CachedCompile {
        artifact: ParallelDnnf {
            structured: StructuredDnnf::from_trusted_parts(dnnf, vtree, tree.events()),
            partition,
            telemetry: telemetry.clone(),
        },
        library,
        stats,
    })
}

/// Compiles one subtree exactly as the sequential compiler would: same
/// per-node logic, same allocation order, over the subtree's post-order.
/// Constants occupy local gate ids 0 (false) and 1 (true) and are the only
/// out-of-block references a fragment may make.
fn compile_fragment(
    automaton: &TreeAutomaton,
    tree: &UncertainTree,
    root: NodeId,
    states: usize,
) -> Fragment {
    let mut circuit = Circuit::new();
    let false_gate = circuit.constant(false);
    let true_gate = circuit.constant(true);
    let mut vtree = Vtree::new();
    let mut gates: HashMap<usize, Vec<GateId>> = HashMap::new();
    let mut vnodes: HashMap<usize, Option<VtreeId>> = HashMap::new();

    for node in tree.tree().post_order_from(root) {
        let own_event = match tree.annotation(node) {
            NodeAnnotation::Fixed => None,
            NodeAnnotation::Event { event, .. } => Some(event),
        };
        match tree.tree().children(node) {
            None => {
                let mut node_gates = vec![false_gate; states];
                for (q, gate) in node_gates.iter_mut().enumerate() {
                    *gate = match tree.annotation(node) {
                        NodeAnnotation::Fixed => {
                            if automaton.leaf_states(tree.tree().label(node)).contains(&q) {
                                true_gate
                            } else {
                                false_gate
                            }
                        }
                        NodeAnnotation::Event {
                            event,
                            if_true,
                            if_false,
                        } => {
                            let in_true = automaton.leaf_states(if_true).contains(&q);
                            let in_false = automaton.leaf_states(if_false).contains(&q);
                            match (in_true, in_false) {
                                (true, true) => {
                                    let v = circuit.var(event);
                                    let nv = circuit.not(v);
                                    circuit.or(vec![v, nv])
                                }
                                (false, false) => false_gate,
                                (true, false) => circuit.var(event),
                                (false, true) => {
                                    let v = circuit.var(event);
                                    circuit.not(v)
                                }
                            }
                        }
                    };
                }
                gates.insert(node.0, node_gates);
                vnodes.insert(node.0, own_event.map(|e| vtree.leaf(e)));
            }
            Some((left, right)) => {
                let left_gates = gates.remove(&left.0).expect("post-order: child first");
                let right_gates = gates.remove(&right.0).expect("post-order: child first");
                let left_v = vnodes.remove(&left.0).expect("post-order: child first");
                let right_v = vnodes.remove(&right.0).expect("post-order: child first");
                let (node_gates, own_v) = internal_node_step(
                    automaton,
                    tree,
                    node,
                    states,
                    &left_gates,
                    &right_gates,
                    left_v,
                    right_v,
                    &mut circuit,
                    &mut vtree,
                );
                gates.insert(node.0, node_gates);
                vnodes.insert(node.0, own_v);
            }
        }
    }
    Fragment {
        root_gates: gates.remove(&root.0).expect("root was processed last"),
        root_vnode: vnodes.remove(&root.0).expect("root was processed last"),
        circuit,
        vtree,
    }
}

/// The sequential compiler's *internal-node* step against the given arenas
/// (which must hold the constants at ids 0 = false and 1 = true, as both
/// the merged circuit and every fragment do): builds the per-state gates
/// of `node` from its children's gate vectors and combines the children's
/// vtree scopes with the node's own event. One definition shared by the
/// fragment workers and the merge spine, so the two can never drift apart
/// — a change here changes both, and the differential suites pin the pair
/// against [`compile_structured_dnnf`] itself.
#[allow(clippy::too_many_arguments)] // mirrors the sequential compiler's full per-node state
fn internal_node_step(
    automaton: &TreeAutomaton,
    tree: &UncertainTree,
    node: NodeId,
    states: usize,
    left_gates: &[GateId],
    right_gates: &[GateId],
    left_v: Option<VtreeId>,
    right_v: Option<VtreeId>,
    circuit: &mut Circuit,
    vtree: &mut Vtree,
) -> (Vec<GateId>, Option<VtreeId>) {
    let false_gate = GateId(0);
    let true_gate = GateId(1);
    debug_assert_eq!(circuit.gate(false_gate), &Gate::Const(false));
    debug_assert_eq!(circuit.gate(true_gate), &Gate::Const(true));
    let conjoin =
        |parts: Vec<GateId>, circuit: &mut Circuit, true_gate: GateId| -> Option<GateId> {
            let real: Vec<GateId> = parts.into_iter().filter(|&g| g != true_gate).collect();
            match real.len() {
                0 => None,
                1 => Some(real[0]),
                _ => Some(circuit.and(real)),
            }
        };
    let (own_event, alternatives): (Option<usize>, Vec<(usize, Option<GateId>)>) =
        match tree.annotation(node) {
            NodeAnnotation::Fixed => (None, vec![(tree.tree().label(node), None)]),
            NodeAnnotation::Event {
                event,
                if_true,
                if_false,
            } => {
                let v = circuit.var(event);
                let not_v = circuit.not(v);
                (
                    Some(event),
                    vec![(if_true, Some(v)), (if_false, Some(not_v))],
                )
            }
        };
    let live_left: Vec<usize> = (0..states)
        .filter(|&q| left_gates[q] != false_gate)
        .collect();
    let live_right: Vec<usize> = (0..states)
        .filter(|&q| right_gates[q] != false_gate)
        .collect();
    let mut disjuncts: Vec<Vec<GateId>> = vec![Vec::new(); states];
    for &(label, guard) in &alternatives {
        for &ql in &live_left {
            for &qr in &live_right {
                for &q in &automaton.internal_states(label, ql, qr) {
                    let gl = left_gates[ql];
                    let gr = right_gates[qr];
                    let inner = conjoin(vec![gl, gr], circuit, true_gate);
                    let conj = match (guard, inner) {
                        (None, None) => true_gate,
                        (None, Some(g)) => g,
                        (Some(gv), None) => gv,
                        (Some(gv), Some(g)) => circuit.and(vec![gv, g]),
                    };
                    disjuncts[q].push(conj);
                }
            }
        }
    }
    let mut node_gates = vec![false_gate; states];
    for (q, disjuncts) in disjuncts.into_iter().enumerate() {
        node_gates[q] = match disjuncts.len() {
            0 => false_gate,
            1 => disjuncts[0],
            _ => circuit.or(disjuncts),
        };
    }
    let children_v = match (left_v, right_v) {
        (None, None) => None,
        (Some(l), None) => Some(l),
        (None, Some(r)) => Some(r),
        (Some(l), Some(r)) => Some(vtree.internal(l, r)),
    };
    let own_v = match (own_event, children_v) {
        (None, v) => v,
        (Some(e), None) => Some(vtree.leaf(e)),
        (Some(e), Some(v)) => {
            let leaf = vtree.leaf(e);
            Some(vtree.internal(leaf, v))
        }
    };
    (node_gates, own_v)
}

/// Replays a fragment's gates (skipping its two local constants) into the
/// global circuit. Allocation order is preserved, so the fragment's gate
/// `i ≥ 2` lands at global id `offset + i - 2` — exactly where the
/// sequential construction would have put it.
fn replay_circuit(global: &mut Circuit, fragment: &Circuit) {
    let offset = global.size();
    let map = |g: GateId| {
        if g.0 < 2 {
            GateId(g.0)
        } else {
            GateId(offset + g.0 - 2)
        }
    };
    for id in 2..fragment.size() {
        let new_id = match fragment.gate(GateId(id)) {
            // Fragment events are globally unique, so `var` always
            // allocates (the memo can never hit across fragments).
            Gate::Var(v) => global.var(*v),
            Gate::Const(_) => unreachable!("fragments hold constants only at ids 0 and 1"),
            Gate::Not(i) => global.not(map(*i)),
            Gate::And(inputs) => {
                let mapped: Vec<GateId> = inputs.iter().map(|&i| map(i)).collect();
                global.and(mapped)
            }
            Gate::Or(inputs) => {
                let mapped: Vec<GateId> = inputs.iter().map(|&i| map(i)).collect();
                global.or(mapped)
            }
        };
        debug_assert_eq!(new_id, map(GateId(id)));
    }
}

/// Replays a fragment's vtree nodes into the global vtree (append-only, so
/// local node `i` lands at global id `offset + i`; leaf spans stay adjacent
/// because leaves are appended in the same order).
fn replay_vtree(global: &mut Vtree, fragment: &Vtree) {
    let offset = global.node_count();
    for i in 0..fragment.node_count() {
        match fragment.node(VtreeId(i)) {
            VtreeNode::Leaf(v) => global.leaf(v),
            VtreeNode::Internal(l, r) => {
                global.internal(VtreeId(offset + l.0), VtreeId(offset + r.0))
            }
        };
    }
}

/// The automaton run itself, fragment-parallel: the states reachable at
/// every node of the tree, equal (as sets) to
/// [`TreeAutomaton::reachable_states`] at every thread count.
pub fn parallel_reachable_states(
    automaton: &TreeAutomaton,
    tree: &BinaryTree,
    threads: usize,
) -> Vec<std::collections::BTreeSet<State>> {
    use std::collections::BTreeSet;
    let plan = match SubtreePlan::cut(tree, threads, 0) {
        Some(plan) => plan,
        None => return automaton.reachable_states(tree),
    };
    let run_subtree = |root: NodeId| -> Vec<(usize, BTreeSet<State>)> {
        let order = tree.post_order_from(root);
        let mut local: HashMap<usize, BTreeSet<State>> = HashMap::with_capacity(order.len());
        for node in order.iter().copied() {
            let label = tree.label(node);
            let states = match tree.children(node) {
                None => automaton.leaf_states(label).clone(),
                Some((l, r)) => {
                    let mut out = BTreeSet::new();
                    for &ls in &local[&l.0] {
                        for &rs in &local[&r.0] {
                            out.extend(automaton.internal_states(label, ls, rs));
                        }
                    }
                    out
                }
            };
            local.insert(node.0, states);
        }
        order
            .into_iter()
            .map(|n| (n.0, local.remove(&n.0).unwrap()))
            .collect()
    };
    let fragments = run_tasks(threads, plan.cuts.len(), &Telemetry::disabled(), |i| {
        run_subtree(plan.cuts[i])
    });
    let mut states: Vec<BTreeSet<State>> = vec![BTreeSet::new(); tree.node_count()];
    for fragment in fragments {
        for (node, set) in fragment {
            states[node] = set;
        }
    }
    for node in tree.post_order() {
        if plan.owner[node.0].is_some() {
            continue;
        }
        let label = tree.label(node);
        let (l, r) = tree
            .children(node)
            .expect("spine nodes are larger than any fragment, hence internal");
        let mut out = BTreeSet::new();
        for &ls in &states[l.0] {
            for &rs in &states[r.0] {
                out.extend(automaton.internal_states(label, ls, rs));
            }
        }
        states[node.0] = out;
    }
    states
}

// ---------------------------------------------------------------------------
// Fragment-parallel evaluation passes
// ---------------------------------------------------------------------------

/// One bottom-up evaluation semantics over d-SDNNF gates; implementors
/// mirror the corresponding `Dnnf` pass exactly (same per-gate operations,
/// and exact arithmetic makes grouping irrelevant), so the parallel result
/// equals the sequential one.
trait GatePass: Sync {
    type Value: Clone + Send;
    fn constant(&self, value: bool) -> Self::Value;
    fn var(&self, v: VarId) -> Self::Value;
    /// Value of `Not(inner)` given the inner gate and its value.
    fn not(&self, circuit: &Circuit, inner: GateId, inner_value: &Self::Value) -> Self::Value;
    fn one(&self) -> Self::Value;
    fn zero(&self) -> Self::Value;
    fn mul_assign(&self, acc: &mut Self::Value, x: &Self::Value);
    fn add_assign(&self, acc: &mut Self::Value, x: &Self::Value);
}

struct ProbabilityPass<'a> {
    prob: &'a (dyn Fn(VarId) -> Rational + Sync),
}

impl GatePass for ProbabilityPass<'_> {
    type Value = Rational;
    fn constant(&self, value: bool) -> Rational {
        if value {
            Rational::one()
        } else {
            Rational::zero()
        }
    }
    fn var(&self, v: VarId) -> Rational {
        (self.prob)(v)
    }
    fn not(&self, _circuit: &Circuit, _inner: GateId, inner_value: &Rational) -> Rational {
        inner_value.complement()
    }
    fn one(&self) -> Rational {
        Rational::one()
    }
    fn zero(&self) -> Rational {
        Rational::zero()
    }
    fn mul_assign(&self, acc: &mut Rational, x: &Rational) {
        *acc *= x;
    }
    fn add_assign(&self, acc: &mut Rational, x: &Rational) {
        *acc += x;
    }
}

struct WmcPass<'a> {
    pos: &'a (dyn Fn(VarId) -> Rational + Sync),
    neg: &'a (dyn Fn(VarId) -> Rational + Sync),
}

impl GatePass for WmcPass<'_> {
    type Value = Rational;
    fn constant(&self, value: bool) -> Rational {
        if value {
            Rational::one()
        } else {
            Rational::zero()
        }
    }
    fn var(&self, v: VarId) -> Rational {
        (self.pos)(v)
    }
    fn not(&self, circuit: &Circuit, inner: GateId, _inner_value: &Rational) -> Rational {
        match circuit.gate(inner) {
            Gate::Var(v) => (self.neg)(*v),
            Gate::Const(b) => self.constant(!b),
            _ => unreachable!("d-SDNNFs negate inputs only"),
        }
    }
    fn one(&self) -> Rational {
        Rational::one()
    }
    fn zero(&self) -> Rational {
        Rational::zero()
    }
    fn mul_assign(&self, acc: &mut Rational, x: &Rational) {
        *acc *= x;
    }
    fn add_assign(&self, acc: &mut Rational, x: &Rational) {
        *acc += x;
    }
}

struct IntervalProbabilityPass<'a> {
    prob: &'a (dyn Fn(VarId) -> ErrorInterval + Sync),
}

impl GatePass for IntervalProbabilityPass<'_> {
    type Value = ErrorInterval;
    fn constant(&self, value: bool) -> ErrorInterval {
        if value {
            ErrorInterval::one()
        } else {
            ErrorInterval::zero()
        }
    }
    fn var(&self, v: VarId) -> ErrorInterval {
        (self.prob)(v)
    }
    fn not(
        &self,
        _circuit: &Circuit,
        _inner: GateId,
        inner_value: &ErrorInterval,
    ) -> ErrorInterval {
        inner_value.complement()
    }
    fn one(&self) -> ErrorInterval {
        ErrorInterval::one()
    }
    fn zero(&self) -> ErrorInterval {
        ErrorInterval::zero()
    }
    fn mul_assign(&self, acc: &mut ErrorInterval, x: &ErrorInterval) {
        *acc = acc.mul(x);
    }
    fn add_assign(&self, acc: &mut ErrorInterval, x: &ErrorInterval) {
        *acc = acc.add(x);
    }
}

struct IntervalWmcPass<'a> {
    pos: &'a (dyn Fn(VarId) -> ErrorInterval + Sync),
    neg: &'a (dyn Fn(VarId) -> ErrorInterval + Sync),
}

impl GatePass for IntervalWmcPass<'_> {
    type Value = ErrorInterval;
    fn constant(&self, value: bool) -> ErrorInterval {
        if value {
            ErrorInterval::one()
        } else {
            ErrorInterval::zero()
        }
    }
    fn var(&self, v: VarId) -> ErrorInterval {
        (self.pos)(v)
    }
    fn not(&self, circuit: &Circuit, inner: GateId, _inner_value: &ErrorInterval) -> ErrorInterval {
        match circuit.gate(inner) {
            Gate::Var(v) => (self.neg)(*v),
            Gate::Const(b) => self.constant(!b),
            _ => unreachable!("d-SDNNFs negate inputs only"),
        }
    }
    fn one(&self) -> ErrorInterval {
        ErrorInterval::one()
    }
    fn zero(&self) -> ErrorInterval {
        ErrorInterval::zero()
    }
    fn mul_assign(&self, acc: &mut ErrorInterval, x: &ErrorInterval) {
        *acc = acc.mul(x);
    }
    fn add_assign(&self, acc: &mut ErrorInterval, x: &ErrorInterval) {
        *acc = acc.add(x);
    }
}

struct CountPass;

impl GatePass for CountPass {
    type Value = BigUint;
    fn constant(&self, value: bool) -> BigUint {
        if value {
            BigUint::one()
        } else {
            BigUint::zero()
        }
    }
    fn var(&self, _v: VarId) -> BigUint {
        BigUint::one()
    }
    fn not(&self, circuit: &Circuit, inner: GateId, _inner_value: &BigUint) -> BigUint {
        match circuit.gate(inner) {
            Gate::Var(_) => BigUint::one(),
            Gate::Const(b) => self.constant(!b),
            _ => unreachable!("d-SDNNFs negate inputs only"),
        }
    }
    fn one(&self) -> BigUint {
        BigUint::one()
    }
    fn zero(&self) -> BigUint {
        BigUint::zero()
    }
    fn mul_assign(&self, acc: &mut BigUint, x: &BigUint) {
        *acc = &*acc * x;
    }
    fn add_assign(&self, acc: &mut BigUint, x: &BigUint) {
        *acc = &*acc + x;
    }
}

/// Evaluates the circuit bottom-up under `pass`: self-contained fragment
/// ranges on worker threads first, then one sweep on the caller's thread
/// for everything outside a fragment (spine gates and, when the partition
/// is empty, the whole circuit).
fn run_pass<P: GatePass>(
    circuit: &Circuit,
    partition: &CircuitPartition,
    threads: usize,
    telemetry: &Telemetry,
    pass: &P,
) -> P::Value {
    let n = circuit.size();
    let mut values: Vec<Option<P::Value>> = vec![None; n];
    if threads > 1 && partition.fragments.len() > 1 {
        let chunks = run_tasks(threads, partition.fragments.len(), telemetry, |fi| {
            let mut chunk_span = telemetry.span("eval_fragment");
            chunk_span.label("fragment", fi);
            let (start, end) = partition.fragments[fi];
            let cfalse = pass.constant(false);
            let ctrue = pass.constant(true);
            let mut buf: Vec<P::Value> = Vec::with_capacity(end - start);
            for id in start..end {
                let get = |i: GateId| -> &P::Value {
                    if i.0 >= start {
                        &buf[i.0 - start]
                    } else {
                        match circuit.gate(i) {
                            Gate::Const(true) => &ctrue,
                            Gate::Const(false) => &cfalse,
                            _ => unreachable!("fragment ranges are self-contained"),
                        }
                    }
                };
                let value = match circuit.gate(GateId(id)) {
                    Gate::Var(v) => pass.var(*v),
                    Gate::Const(b) => pass.constant(*b),
                    Gate::Not(i) => pass.not(circuit, *i, get(*i)),
                    Gate::And(inputs) => {
                        let mut acc = pass.one();
                        for &i in inputs {
                            pass.mul_assign(&mut acc, get(i));
                        }
                        acc
                    }
                    Gate::Or(inputs) => {
                        let mut acc = pass.zero();
                        for &i in inputs {
                            pass.add_assign(&mut acc, get(i));
                        }
                        acc
                    }
                };
                buf.push(value);
            }
            buf
        });
        for (fi, chunk) in chunks.into_iter().enumerate() {
            let (start, _) = partition.fragments[fi];
            for (offset, value) in chunk.into_iter().enumerate() {
                values[start + offset] = Some(value);
            }
        }
    }
    for id in 0..n {
        if values[id].is_some() {
            continue;
        }
        let value = match circuit.gate(GateId(id)) {
            Gate::Var(v) => pass.var(*v),
            Gate::Const(b) => pass.constant(*b),
            Gate::Not(i) => {
                let inner = values[i.0].as_ref().expect("ids are topological");
                pass.not(circuit, *i, inner)
            }
            Gate::And(inputs) => {
                let mut acc = pass.one();
                for &i in inputs {
                    pass.mul_assign(&mut acc, values[i.0].as_ref().expect("ids are topological"));
                }
                acc
            }
            Gate::Or(inputs) => {
                let mut acc = pass.zero();
                for &i in inputs {
                    pass.add_assign(&mut acc, values[i.0].as_ref().expect("ids are topological"));
                }
                acc
            }
        };
        values[id] = Some(value);
    }
    values[circuit.output().0]
        .take()
        .expect("output gate was evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_automata::{compile_structured_dnnf, strategies};

    /// Gate-by-gate equality (ids, kinds, operand order, output) plus vtree
    /// node equality — the byte-identity contract.
    fn assert_identical(parallel: &ParallelDnnf, sequential: &StructuredDnnf) {
        let pc = parallel.structured().dnnf().circuit();
        let sc = sequential.dnnf().circuit();
        assert_eq!(pc.size(), sc.size());
        for id in pc.gate_ids() {
            assert_eq!(pc.gate(id), sc.gate(id), "gate {id:?}");
        }
        assert_eq!(pc.output(), sc.output());
        let pv = parallel.structured().vtree();
        let sv = sequential.vtree();
        assert_eq!(pv.node_count(), sv.node_count());
        for i in 0..pv.node_count() {
            assert_eq!(pv.node(VtreeId(i)), sv.node(VtreeId(i)), "vtree node {i}");
        }
        assert_eq!(pv.root(), sv.root());
        assert_eq!(parallel.structured().universe(), sequential.universe());
    }

    /// A deep uncertain comb with every leaf controlled by its own event —
    /// large enough to be cut into several fragments.
    fn big_comb(n: usize) -> UncertainTree {
        let tree = BinaryTree::comb(&vec![0; n], 2);
        let mut u = UncertainTree::certain(tree);
        let mut event = 0;
        for node in 0..u.tree().node_count() {
            if u.tree().is_leaf(NodeId(node)) {
                u.set_event(NodeId(node), event, 1, 0);
                event += 1;
            }
        }
        u
    }

    #[test]
    fn plan_covers_every_node_exactly_once() {
        let tree = BinaryTree::comb(&vec![0; 400], 2);
        let plan = SubtreePlan::cut(&tree, 4, 0).expect("big tree must split");
        assert!(plan.cuts.len() >= 2);
        let mut covered = 0usize;
        for cut in &plan.cuts {
            covered += tree.post_order_from(*cut).len();
        }
        let spine = plan.owner.iter().filter(|o| o.is_none()).count();
        assert_eq!(covered + spine, tree.node_count());
        // Cut roots own themselves; spine nodes own nothing.
        for (i, cut) in plan.cuts.iter().enumerate() {
            assert_eq!(plan.owner[cut.0], Some(i as u32));
        }
    }

    #[test]
    fn small_trees_fall_back_to_sequential() {
        assert!(SubtreePlan::cut(&BinaryTree::comb(&[0, 1, 0], 2), 8, 0).is_none());
        let u = big_comb(3);
        let automaton = treelineage_automata::parity_automaton(2);
        let p = compile_structured_dnnf_parallel(&automaton, &u, &EngineConfig::with_threads(8))
            .unwrap();
        assert!(p.partition().is_empty());
    }

    #[test]
    fn parallel_compile_is_byte_identical_on_combs() {
        let automaton = treelineage_automata::parity_automaton(2);
        for n in [200usize, 333, 1000] {
            let u = big_comb(n);
            let sequential = compile_structured_dnnf(&automaton, &u).unwrap();
            for threads in [2usize, 3, 8] {
                let config = EngineConfig::with_threads(threads);
                let parallel = compile_structured_dnnf_parallel(&automaton, &u, &config).unwrap();
                assert!(!parallel.partition().is_empty(), "n={n} threads={threads}");
                assert_identical(&parallel, &sequential);
            }
        }
    }

    #[test]
    fn parallel_eval_matches_sequential_exactly() {
        let automaton = treelineage_automata::parity_automaton(2);
        let u = big_comb(500);
        let config = EngineConfig::with_threads(4);
        let parallel = compile_structured_dnnf_parallel(&automaton, &u, &config).unwrap();
        let sequential = compile_structured_dnnf(&automaton, &u).unwrap();
        let prob = |e: usize| Rational::from_ratio_u64(1, e as u64 % 7 + 2);
        let neg = |e: usize| Rational::from_ratio_u64(1, e as u64 % 5 + 1);
        for threads in [1usize, 2, 8] {
            assert_eq!(
                parallel.probability(&prob, threads),
                sequential.probability(&prob)
            );
            assert_eq!(
                parallel.wmc(&prob, &neg, threads),
                sequential.wmc(&prob, &neg)
            );
            assert_eq!(parallel.model_count(threads), sequential.model_count());
        }
    }

    #[test]
    fn interval_pass_contains_exact_and_is_thread_count_invariant() {
        let automaton = treelineage_automata::parity_automaton(2);
        let u = big_comb(500);
        let config = EngineConfig::with_threads(4);
        let parallel = compile_structured_dnnf_parallel(&automaton, &u, &config).unwrap();
        let prob = |e: usize| Rational::from_ratio_u64(1, e as u64 % 7 + 2);
        let neg = |e: usize| Rational::from_ratio_u64(1, e as u64 % 5 + 1);
        let exact_p = parallel.probability(&prob, 1);
        let exact_w = parallel.wmc(&prob, &neg, 1);
        let iv = |f: &dyn Fn(usize) -> Rational, e: usize| ErrorInterval::from_rational(&f(e));
        let base_p = parallel.probability_interval(&|e| iv(&prob, e), 1);
        let base_w = parallel.wmc_interval(&|e| iv(&prob, e), &|e| iv(&neg, e), 1);
        assert!(base_p.contains(&exact_p));
        assert!(base_w.contains(&exact_w));
        for threads in [2usize, 8] {
            // Bit-identical endpoints at every thread count: the pass is
            // per-gate deterministic, so parallelism cannot move a bound.
            let p = parallel.probability_interval(&|e| iv(&prob, e), threads);
            let w = parallel.wmc_interval(&|e| iv(&prob, e), &|e| iv(&neg, e), threads);
            assert_eq!(p, base_p, "threads={threads}");
            assert_eq!(w, base_w, "threads={threads}");
        }
    }

    #[test]
    fn validation_errors_match_sequential() {
        let nta = treelineage_automata::exists_one_automaton(2);
        let u = big_comb(300);
        let config = EngineConfig::with_threads(4);
        assert_eq!(
            compile_structured_dnnf_parallel(&nta, &u, &config).unwrap_err(),
            StructuredDnnfError::NondeterministicAutomaton
        );
        let automaton = treelineage_automata::parity_automaton(2);
        let mut shared = big_comb(300);
        // Give two leaves the same event: rejected with the same error.
        let leaves: Vec<NodeId> = (0..shared.tree().node_count())
            .map(NodeId)
            .filter(|&n| shared.tree().is_leaf(n))
            .collect();
        shared.set_event(leaves[7], 3, 1, 0);
        assert_eq!(
            compile_structured_dnnf_parallel(&automaton, &shared, &config).unwrap_err(),
            compile_structured_dnnf(&automaton, &shared).unwrap_err()
        );
    }

    #[test]
    fn parallel_reachable_states_matches_sequential() {
        let automaton = treelineage_automata::exists_one_automaton(2);
        let u = big_comb(400);
        let concrete = u.instantiate(&|e| e % 3 == 0);
        let expected = automaton.reachable_states(&concrete);
        for threads in [1usize, 2, 8] {
            assert_eq!(
                parallel_reachable_states(&automaton, &concrete, threads),
                expected,
                "threads={threads}"
            );
        }
    }

    /// A leaf owned by some fragment of the plan (not on the spine).
    fn fragment_leaf(u: &UncertainTree, plan: &SubtreePlan) -> NodeId {
        (0..u.tree().node_count())
            .map(NodeId)
            .find(|&n| u.tree().is_leaf(n) && plan.owner[n.0].is_some())
            .expect("a multi-fragment plan owns some leaf")
    }

    #[test]
    fn a_touched_node_dirties_exactly_its_owning_fragment() {
        let u = big_comb(400);
        let plan = SubtreePlan::cut(u.tree(), 4, 0).expect("big tree must split");
        let leaf = fragment_leaf(&u, &plan);
        let owner = plan.owner[leaf.0].unwrap() as usize;
        let before: Vec<FragmentKey> = plan.cuts.iter().map(|&c| fragment_key(&u, c)).collect();
        let mut mutated = u.clone();
        mutated.set_event(leaf, 9999, 1, 0);
        let after: Vec<FragmentKey> = plan
            .cuts
            .iter()
            .map(|&c| fragment_key(&mutated, c))
            .collect();
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            assert_eq!(b == a, i != owner, "fragment {i}");
        }
    }

    #[test]
    fn cached_recompile_is_byte_identical_and_reuses_untouched_fragments() {
        let automaton = treelineage_automata::parity_automaton(2);
        let u = big_comb(400);
        let config = EngineConfig::with_threads(4);
        let first = compile_with_pool_cached(&automaton, &u, &config, 4, None).unwrap();
        let total = first.stats.total;
        assert!(total >= 2);
        assert_eq!(first.stats.reused, 0);
        assert_eq!(first.stats.recompiled, total);
        assert_eq!(first.library.len(), total);

        // Replaying the library against the unchanged tree is zero-dirty and
        // still byte-identical.
        let replay =
            compile_with_pool_cached(&automaton, &u, &config, 4, Some(&first.library)).unwrap();
        assert_eq!(replay.stats.recompiled, 0);
        assert_eq!(replay.stats.reused, total);
        assert_identical(
            &replay.artifact,
            &compile_structured_dnnf(&automaton, &u).unwrap(),
        );

        // Touch one fragment-owned leaf: exactly one fragment recompiles,
        // and the result equals a cold compile of the mutated tree.
        let plan = SubtreePlan::cut(u.tree(), 4, 0).unwrap();
        let leaf = fragment_leaf(&u, &plan);
        let mut mutated = u.clone();
        mutated.set_event(leaf, 9999, 1, 0);
        let second =
            compile_with_pool_cached(&automaton, &mutated, &config, 4, Some(&first.library))
                .unwrap();
        assert_eq!(second.stats.recompiled, 1);
        assert_eq!(second.stats.reused, total - 1);
        assert_identical(
            &second.artifact,
            &compile_structured_dnnf(&automaton, &mutated).unwrap(),
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn random_trees_compile_byte_identically(
            u in strategies::uncertain_tree(64, 3),
            automaton in strategies::deterministic_automaton(3, 4),
        ) {
            // Random trees are small, so pin a tiny fragment grain to force
            // the cut/merge path that a production-size tree would take.
            let sequential = match compile_structured_dnnf(&automaton, &u) {
                Ok(s) => s,
                Err(_) => return, // shared events: both paths reject (covered above)
            };
            for threads in [2usize, 4] {
                let mut config = EngineConfig::with_threads(threads);
                config.fragment_grain = 8;
                let parallel = compile_structured_dnnf_parallel(&automaton, &u, &config).unwrap();
                assert_identical(&parallel, &sequential);
                let prob = |e: usize| Rational::from_ratio_u64(1, e as u64 % 3 + 2);
                assert_eq!(
                    parallel.probability(&prob, threads),
                    sequential.probability(&prob)
                );
                assert_eq!(parallel.model_count(threads), sequential.model_count());
            }
        }
    }
}
