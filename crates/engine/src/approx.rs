//! Karp–Luby Monte-Carlo estimation of query probability over DNF lineages.
//!
//! The dichotomy's hardness half (Theorem 4.2 of the paper: no
//! subexponential OBDDs — and no tractable exact evaluation — beyond
//! bounded-treewidth instances) means the exact pipeline *must* fail on
//! some inputs: the query→automaton compiler gives up when its reachable
//! deterministic state set blows the configured budget. This module turns
//! that failure into a degraded-but-served mode, the classical Karp–Luby
//! *coverage* estimator specialized to match-DNF lineages:
//!
//! The lineage of a UCQ is a monotone DNF `∨_i ∧_{f ∈ mᵢ} f` over the
//! query's matches `mᵢ` (one clause per match). Direct sampling of worlds
//! is useless when `P` is small, so Karp–Luby samples from the *covered*
//! space instead: pick clause `i` with probability `wᵢ / W` (where
//! `wᵢ = Π_{f ∈ mᵢ} p_f` and `W = Σᵢ wᵢ`), then sample a world conditioned
//! on clause `i` being true, and record `1 / cover(world)` where `cover`
//! counts the clauses the world satisfies. The identity
//! `P = W · E[1/cover]` is exact, the per-sample value lies in `[1/m, 1]`,
//! and `N = ⌈4·m·ln(2/δ)/ε²⌉` samples suffice for relative error `ε` with
//! probability `1 − δ` (Karp–Luby–Madras; `m` = number of clauses). Since
//! `P ≤ 1`, the relative bound implies the absolute one the tests check.
//!
//! Worlds are bitmasks over the *relevant* facts only (facts appearing in
//! some match) — irrelevant facts cannot change any clause, so they are
//! never sampled. The generator is the in-tree deterministic splitmix64
//! `StdRng`, so a fixed seed reproduces the estimate bit-for-bit.

use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use treelineage_instance::{FactId, Instance, ProbabilityValuation};
use treelineage_num::ErrorInterval;
use treelineage_query::{matching, UnionOfConjunctiveQueries};

/// The result of a Karp–Luby estimation run.
#[derive(Clone, Debug, PartialEq)]
pub struct KarpLubyEstimate {
    /// The point estimate of the query probability (clamped to `[0, 1]`).
    pub estimate: f64,
    /// The relative error bound the sample count was sized for.
    pub epsilon: f64,
    /// The failure probability the sample count was sized for.
    pub delta: f64,
    /// Samples actually drawn (`0` when the answer was exact: empty DNF,
    /// a trivially-true clause, or zero total clause weight).
    pub samples: usize,
    /// Number of DNF clauses (distinct query matches).
    pub clauses: usize,
}

impl KarpLubyEstimate {
    /// The `(ε, δ)` enclosure of the exact probability: with probability at
    /// least `1 − δ` the exact value lies in `[est/(1+ε), est/(1−ε)]`
    /// (clamped to `[0, 1]`). Unlike the certified interval of the float
    /// pass this bound is *probabilistic* — callers that need certainty
    /// must use the exact pipeline.
    pub fn interval(&self) -> ErrorInterval {
        if self.samples == 0 {
            return ErrorInterval::exact(self.estimate);
        }
        let lo = (self.estimate / (1.0 + self.epsilon)).max(0.0);
        let hi = (self.estimate / (1.0 - self.epsilon)).min(1.0);
        ErrorInterval::new(lo.min(hi), hi.max(lo))
    }
}

/// The Karp–Luby–Madras sample count for relative error `ε` with failure
/// probability `δ` on a DNF with `clauses` clauses:
/// `N = ⌈4 · clauses · ln(2/δ) / ε²⌉`.
pub fn karp_luby_sample_bound(clauses: usize, epsilon: f64, delta: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must lie in (0, 1), got {epsilon}"
    );
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must lie in (0, 1), got {delta}"
    );
    if clauses == 0 {
        return 0;
    }
    ((4.0 * clauses as f64 * (2.0 / delta).ln()) / (epsilon * epsilon)).ceil() as usize
}

/// A uniform draw from `[0, 1)` (53 random mantissa bits).
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Estimates the probability that `query` holds on `instance` under
/// independent per-fact probabilities, by Karp–Luby coverage sampling over
/// the match DNF with the `(ε, δ)` sample count of
/// [`karp_luby_sample_bound`]. Deterministic for a fixed `seed`.
///
/// Trivial cases are answered exactly with zero samples: no matches
/// (probability 0), a match over no facts (probability 1), and zero total
/// clause weight (probability 0).
pub fn karp_luby_probability(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
    valuation: &ProbabilityValuation,
    epsilon: f64,
    delta: f64,
    seed: u64,
) -> KarpLubyEstimate {
    // Deduplicated clauses: distinct matches can use identical fact sets
    // (the estimator stays exact with duplicates, but dedup lowers both the
    // sample bound and the variance).
    let clauses: BTreeSet<Vec<FactId>> = matching::all_matches(query, instance)
        .into_iter()
        .map(|m| {
            let mut facts: Vec<FactId> = m.iter().copied().collect();
            facts.sort_unstable();
            facts.dedup();
            facts
        })
        .collect();
    let m = clauses.len();
    let exact = |estimate: f64| KarpLubyEstimate {
        estimate,
        epsilon,
        delta,
        samples: 0,
        clauses: m,
    };
    if m == 0 {
        return exact(0.0);
    }
    if clauses.iter().any(|c| c.is_empty()) {
        // A match over no facts is a tautology.
        return exact(1.0);
    }

    // Index the relevant facts and build per-clause bitmasks.
    let relevant: Vec<FactId> = clauses
        .iter()
        .flatten()
        .copied()
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index: BTreeMap<FactId, usize> =
        relevant.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let words = relevant.len().div_ceil(64);
    let masks: Vec<Vec<u64>> = clauses
        .iter()
        .map(|clause| {
            let mut mask = vec![0u64; words];
            for f in clause {
                let bit = index[f];
                mask[bit / 64] |= 1 << (bit % 64);
            }
            mask
        })
        .collect();
    let probs: Vec<f64> = relevant
        .iter()
        .map(|&f| valuation.probability(f).to_f64().clamp(0.0, 1.0))
        .collect();

    // Clause weights and the cumulative distribution for ∝-weight sampling.
    let weights: Vec<f64> = clauses
        .iter()
        .map(|clause| clause.iter().map(|f| probs[index[f]]).product())
        .collect();
    let total_weight: f64 = weights.iter().sum();
    if total_weight <= 0.0 {
        return exact(0.0);
    }
    let mut cumulative = Vec::with_capacity(m);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cumulative.push(acc);
    }

    let samples = karp_luby_sample_bound(m, epsilon, delta);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coverage_sum = 0.0f64;
    let mut world = vec![0u64; words];
    for _ in 0..samples {
        // Clause i with probability wᵢ / W.
        let target = unit(&mut rng) * total_weight;
        let chosen = cumulative.partition_point(|&c| c <= target).min(m - 1);
        // World conditioned on clause `chosen` true: its facts are present,
        // every other relevant fact keeps its own probability.
        world.copy_from_slice(&masks[chosen]);
        for (bit, &p) in probs.iter().enumerate() {
            let (word, shift) = (bit / 64, bit % 64);
            if masks[chosen][word] >> shift & 1 == 0 && rng.gen_bool(p) {
                world[word] |= 1 << shift;
            }
        }
        // cover(world) ≥ 1: the chosen clause is satisfied by construction.
        let cover = masks
            .iter()
            .filter(|mask| mask.iter().zip(&world).all(|(&mw, &ww)| mw & ww == mw))
            .count();
        coverage_sum += 1.0 / cover as f64;
    }
    KarpLubyEstimate {
        estimate: (total_weight * coverage_sum / samples as f64).clamp(0.0, 1.0),
        epsilon,
        delta,
        samples,
        clauses: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_instance::Signature;
    use treelineage_num::Rational;
    use treelineage_query::parse_query;

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    fn chain(n: usize) -> Instance {
        let mut inst = Instance::new(rst());
        for i in 0..n as u64 {
            inst.add_fact_by_name("R", &[i]);
            inst.add_fact_by_name("S", &[i, i + 1]);
            inst.add_fact_by_name("T", &[i + 1]);
        }
        inst
    }

    /// Exact probability of the match DNF by brute-force world enumeration
    /// over the relevant facts (exponential — test-sized instances only).
    fn brute_force(
        query: &UnionOfConjunctiveQueries,
        instance: &Instance,
        valuation: &ProbabilityValuation,
    ) -> f64 {
        let clauses: Vec<BTreeSet<FactId>> = matching::all_matches(query, instance)
            .into_iter()
            .map(|mm| mm.iter().copied().collect())
            .collect();
        let relevant: Vec<FactId> = clauses
            .iter()
            .flatten()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut total = 0.0;
        for world in 0u64..1 << relevant.len() {
            let present: BTreeSet<FactId> = relevant
                .iter()
                .enumerate()
                .filter(|&(i, _)| world >> i & 1 == 1)
                .map(|(_, &f)| f)
                .collect();
            if !clauses.iter().any(|c| c.is_subset(&present)) {
                continue;
            }
            let p: f64 = relevant
                .iter()
                .map(|f| {
                    let pf = valuation.probability(*f).to_f64();
                    if present.contains(f) {
                        pf
                    } else {
                        1.0 - pf
                    }
                })
                .product();
            total += p;
        }
        total
    }

    #[test]
    fn sample_bound_formula() {
        assert_eq!(karp_luby_sample_bound(0, 0.1, 0.1), 0);
        // 4 · 1 · ln(20) / 0.01 = 1198.29… → 1199.
        assert_eq!(karp_luby_sample_bound(1, 0.1, 0.1), 1199);
        // Linear in the clause count.
        assert_eq!(karp_luby_sample_bound(3, 0.1, 0.1), 3 * 1199 - 2);
    }

    #[test]
    fn trivial_cases_are_exact() {
        let inst = chain(2);
        let valuation = ProbabilityValuation::all_one_half(&inst);
        // A query with no matches.
        let q = parse_query(&rst(), "R(x), T(x), S(x, x)").unwrap();
        let e = karp_luby_probability(&q, &inst, &valuation, 0.1, 0.1, 7);
        assert_eq!(e.estimate, 0.0);
        assert_eq!(e.samples, 0);
        assert_eq!(e.interval(), ErrorInterval::exact(0.0));
    }

    #[test]
    fn estimate_agrees_with_brute_force_within_epsilon() {
        let inst = chain(3);
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let valuation = ProbabilityValuation::uniform(&inst, Rational::from_ratio_u64(1, 3));
        let exact = brute_force(&q, &inst, &valuation);
        assert!(exact > 0.0 && exact < 1.0);
        let epsilon = 0.05;
        let e = karp_luby_probability(&q, &inst, &valuation, epsilon, 0.05, 42);
        assert!(e.samples >= karp_luby_sample_bound(e.clauses, epsilon, 0.05));
        assert!(
            (e.estimate - exact).abs() <= epsilon * exact,
            "estimate {} vs exact {}",
            e.estimate,
            exact
        );
        assert!(e.interval().contains_f64(exact));
        // Deterministic for a fixed seed.
        let again = karp_luby_probability(&q, &inst, &valuation, epsilon, 0.05, 42);
        assert_eq!(e, again);
    }
}
