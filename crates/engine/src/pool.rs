//! A minimal work-stealing scheduler over `std::thread`.
//!
//! The engine's parallelism is embarrassingly data-parallel (disjoint
//! subtrees, disjoint gate ranges, independent requests), so the scheduler
//! only has to balance a *static* set of tasks whose costs vary wildly — a
//! cut subtree can be three nodes or a third of the tree. Each worker owns a
//! deque seeded round-robin; it pops from the back of its own deque (LIFO,
//! cache-warm) and, when empty, *steals from the front* of the other
//! workers' deques (FIFO, so it grabs the task the owner would reach last).
//! No blocking is needed: the task set never grows, so a worker that finds
//! every deque empty is done.
//!
//! The no-external-deps rule rules out `rayon`/`crossbeam`; mutex-guarded
//! deques are entirely sufficient here because tasks are coarse (hundreds of
//! tree nodes or an entire request) and steals are rare next to task bodies.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `count` independent tasks on up to `threads` workers and returns
/// their results in task order. `job(i)` computes task `i`; tasks must not
/// depend on each other. With `threads <= 1` (or a single task) everything
/// runs inline on the caller's thread — the scheduler adds zero overhead to
/// the sequential path.
pub(crate) fn run_tasks<T, F>(threads: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let workers = threads.min(count);
    // Deal tasks round-robin so every worker starts with a share.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..count).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let job = &job;
            scope.spawn(move || loop {
                // Own work first (LIFO keeps the most recently dealt — and
                // most likely cache-resident — indices hot)...
                let mut task = deques[w].lock().unwrap().pop_back();
                if task.is_none() {
                    // ...then steal the *oldest* task of the most loaded
                    // victim, the one its owner would reach last.
                    let victim = (0..workers)
                        .filter(|&v| v != w)
                        .max_by_key(|&v| deques[v].lock().unwrap().len());
                    if let Some(v) = victim {
                        task = deques[v].lock().unwrap().pop_front();
                    }
                }
                match task {
                    Some(i) => {
                        let result = job(i);
                        *slots[i].lock().unwrap() = Some(result);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every task index was dealt to exactly one deque")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_tasks(threads, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_tasks(4, 100, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_task_costs_are_balanced() {
        // A few heavy tasks among many light ones: stealing must still
        // produce the right results (timing is not asserted — the point is
        // that the scheduler terminates and stays correct under imbalance).
        let out = run_tasks(4, 16, |i| {
            if i % 5 == 0 {
                (0..20_000u64).map(|x| x.wrapping_mul(i as u64 + 1)).sum()
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 16);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn zero_and_one_tasks() {
        assert!(run_tasks(4, 0, |i| i).is_empty());
        assert_eq!(run_tasks(4, 1, |i| i + 1), vec![1]);
    }
}
