//! A minimal work-stealing scheduler over `std::thread`.
//!
//! The engine's parallelism is embarrassingly data-parallel (disjoint
//! subtrees, disjoint gate ranges, independent requests), so the scheduler
//! only has to balance a *static* set of tasks whose costs vary wildly — a
//! cut subtree can be three nodes or a third of the tree. Each worker owns a
//! deque seeded round-robin; it pops from the back of its own deque (LIFO,
//! cache-warm) and, when empty, *steals from the front* of the other
//! workers' deques (FIFO, so it grabs the task the owner would reach last).
//! No blocking is needed: the task set never grows, so a worker that finds
//! every deque empty is done.
//!
//! The no-external-deps rule rules out `rayon`/`crossbeam`; mutex-guarded
//! deques are entirely sufficient here because tasks are coarse (hundreds of
//! tree nodes or an entire request) and steals are rare next to task bodies.
//!
//! ## Panic containment
//!
//! Task bodies run under [`std::panic::catch_unwind`], and every internal
//! lock goes through [`lock_recovering`]. This kills a failure cascade the
//! previous version had: a panicking task unwound while holding no lock, but
//! the panic escaped the worker thread and every *other* worker (and the
//! caller, on the next session call) then hit `PoisonError` panics on the
//! shared mutexes — one bad request poisoned the whole pool. Now a panic in
//! task `i` is captured as that task's result: [`run_tasks`] re-raises the
//! first captured payload on the caller thread (same observable behaviour as
//! sequential execution, no poisoning side effects), and
//! [`run_tasks_catching`] hands the panics back as per-task `Err` values so
//! a session can fail one request while serving the rest.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

use treelineage_telemetry::Telemetry;

/// Locks a mutex, recovering the guard when a previous holder panicked.
///
/// All engine state guarded by mutexes (work deques, result slots, session
/// caches) is kept consistent across unwinds — writers only replace whole
/// values, never leave partial updates — so the poison flag carries no
/// information here and propagating it would only turn one panic into an
/// opaque cascade of `PoisonError` panics.
pub(crate) fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a captured panic payload as text (the common `&str` / `String`
/// payloads are shown verbatim; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type TaskResult<T> = Result<T, Box<dyn Any + Send>>;

/// Runs `count` independent tasks on up to `threads` workers and returns
/// their results in task order. `job(i)` computes task `i`; tasks must not
/// depend on each other. With `threads <= 1` (or a single task) everything
/// runs inline on the caller's thread — the scheduler adds zero overhead to
/// the sequential path.
///
/// If a task panics, the remaining tasks still run to completion and the
/// first panic (in task order) is re-raised on the caller's thread with its
/// original payload; no mutex poisoning escapes.
///
/// When `telemetry` is enabled, each worker records its executed-task and
/// successful-steal counts (`pool_tasks_total` / `pool_steals_total`,
/// labelled by worker index) once, at worker exit — the task loop itself
/// touches only thread-local integers, so instrumentation never contends.
pub(crate) fn run_tasks<T, F>(threads: usize, count: usize, telemetry: &Telemetry, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(count);
    for result in run_tasks_impl(threads, count, telemetry, job) {
        match result {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// Like [`run_tasks`], but panics become per-task `Err` values (rendered to
/// text) instead of unwinding the caller: the session layer maps these to
/// typed `EngineError::WorkerPanicked` results so one malformed request in a
/// batch cannot take down its neighbours or the session.
pub(crate) fn run_tasks_catching<T, F>(
    threads: usize,
    count: usize,
    telemetry: &Telemetry,
    job: F,
) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_tasks_impl(threads, count, telemetry, job)
        .into_iter()
        .map(|r| r.map_err(|payload| panic_message(payload.as_ref())))
        .collect()
}

fn run_tasks_impl<T, F>(
    threads: usize,
    count: usize,
    telemetry: &Telemetry,
    job: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let guarded = |i: usize| catch_unwind(AssertUnwindSafe(|| job(i)));
    if threads <= 1 || count <= 1 {
        let results: Vec<TaskResult<T>> = (0..count).map(guarded).collect();
        if telemetry.is_enabled() && count > 0 {
            telemetry.counter_add("pool_tasks_total", &[("worker", "inline")], count as u64);
        }
        return results;
    }
    let workers = threads.min(count);
    // Capture the caller's span context at spawn time: workers install it
    // as their ambient context, so any span a task opens parents back to
    // the span that enqueued the work instead of starting an orphan trace.
    // (The inline path above needs nothing — the caller's own span stack
    // is already in place.)
    let span_context = telemetry.current_context();
    // Deal tasks round-robin so every worker starts with a share.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..count).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<TaskResult<T>>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let guarded = &guarded;
            scope.spawn(move || {
                let _context_guard = telemetry.install_context(span_context);
                let mut ran: u64 = 0;
                let mut stolen: u64 = 0;
                loop {
                    // Own work first (LIFO keeps the most recently dealt — and
                    // most likely cache-resident — indices hot)...
                    let mut task = lock_recovering(&deques[w]).pop_back();
                    if task.is_none() {
                        // ...then steal the *oldest* task of the most loaded
                        // victim, the one its owner would reach last.
                        let victim = (0..workers)
                            .filter(|&v| v != w)
                            .max_by_key(|&v| lock_recovering(&deques[v]).len());
                        if let Some(v) = victim {
                            task = lock_recovering(&deques[v]).pop_front();
                            if task.is_some() {
                                stolen += 1;
                            }
                        }
                    }
                    match task {
                        Some(i) => {
                            ran += 1;
                            let result = guarded(i);
                            *lock_recovering(&slots[i]) = Some(result);
                        }
                        None => break,
                    }
                }
                if telemetry.is_enabled() && ran > 0 {
                    let worker = w.to_string();
                    let labels = [("worker", worker.as_str())];
                    telemetry.counter_add("pool_tasks_total", &labels, ran);
                    if stolen > 0 {
                        telemetry.counter_add("pool_steals_total", &labels, stolen);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            lock_recovering(&slot)
                .take()
                .expect("every task index was dealt to exactly one deque")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_tasks(threads, 37, &Telemetry::disabled(), |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_tasks(4, 100, &Telemetry::disabled(), |i| {
            counters[i].fetch_add(1, Ordering::SeqCst)
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_task_costs_are_balanced() {
        // A few heavy tasks among many light ones: stealing must still
        // produce the right results (timing is not asserted — the point is
        // that the scheduler terminates and stays correct under imbalance).
        let out = run_tasks(4, 16, &Telemetry::disabled(), |i| {
            if i % 5 == 0 {
                (0..20_000u64).map(|x| x.wrapping_mul(i as u64 + 1)).sum()
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 16);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn zero_and_one_tasks() {
        assert!(run_tasks(4, 0, &Telemetry::disabled(), |i| i).is_empty());
        assert_eq!(run_tasks(4, 1, &Telemetry::disabled(), |i| i + 1), vec![1]);
    }

    #[test]
    fn panicking_task_does_not_poison_the_rest() {
        // One bad task out of 16: the others must all complete, the bad one
        // must come back as a typed error, and the original message must
        // survive — no secondary PoisonError panics anywhere.
        let out = run_tasks_catching(4, 16, &Telemetry::disabled(), |i| {
            if i == 5 {
                panic!("task {i} exploded");
            }
            i * 10
        });
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                assert_eq!(r.as_ref().unwrap_err(), "task 5 exploded");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 10);
            }
        }
    }

    #[test]
    fn run_tasks_reraises_the_panic_once() {
        let caught = std::panic::catch_unwind(|| {
            run_tasks(4, 8, &Telemetry::disabled(), |i| {
                if i == 3 {
                    panic!("original payload");
                }
                i
            })
        });
        let payload = caught.unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "original payload");
    }

    #[test]
    fn pool_stays_usable_after_a_panic() {
        // A panicking run followed by a clean run on the same thread: the
        // second run must behave normally (nothing static was poisoned).
        let _ = run_tasks_catching(4, 8, &Telemetry::disabled(), |i| {
            if i == 0 {
                panic!("boom")
            } else {
                i
            }
        });
        let out = run_tasks(4, 8, &Telemetry::disabled(), |i| i + 1);
        assert_eq!(out, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn telemetry_counts_tasks_across_workers() {
        let telemetry = Telemetry::enabled();
        let out = run_tasks(4, 64, &telemetry, |i| {
            // Uneven costs so at least one steal is plausible; only the
            // task total is asserted (steals depend on timing).
            if i % 7 == 0 {
                (0..10_000u64).map(|x| x.wrapping_add(i as u64)).sum()
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 64);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter_total("pool_tasks_total"), 64);
        // The inline path records under the "inline" worker label.
        let _ = run_tasks(1, 5, &telemetry, |i| i);
        assert_eq!(
            telemetry
                .snapshot()
                .counter("pool_tasks_total", &[("worker", "inline")]),
            Some(5)
        );
    }

    #[test]
    fn worker_spans_parent_to_the_spawning_context() {
        // The regression this pins: span parenting used to ride only a
        // thread-local stack, so spans opened by pool workers came out as
        // orphan roots. With context capture at spawn time they must all
        // parent to the span that was open at the `run_tasks` call.
        let telemetry = Telemetry::enabled();
        let root = telemetry.span("root");
        let root_ctx = root.context().unwrap();
        let out = run_tasks(8, 16, &telemetry, |i| {
            let mut span = telemetry.span("task");
            span.label("task", i);
            i
        });
        assert_eq!(out.len(), 16);
        drop(root);
        let events = telemetry.drain_events();
        let tasks: Vec<_> = events.iter().filter(|e| e.name == "task").collect();
        assert_eq!(tasks.len(), 16);
        for task in tasks {
            assert_eq!(
                task.parent,
                Some(root_ctx.span),
                "pool-worker span detached from the spawning request"
            );
            assert_eq!(task.trace, root_ctx.trace);
        }
    }

    #[test]
    fn lock_recovering_recovers_poisoned_mutexes() {
        let m = Mutex::new(41);
        // Poison it.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison");
        }));
        assert!(m.is_poisoned());
        *lock_recovering(&m) += 1;
        assert_eq!(*lock_recovering(&m), 42);
    }
}
