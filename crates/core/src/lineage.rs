//! Lineage construction for UCQ≠ queries on relational instances
//! (Theorems 6.3, 6.5, 6.7 and 6.11 of the paper).
//!
//! The lineage of a query `q` on an instance `I` (Definition 6.1) is the
//! Boolean function over the facts of `I` that is true on a subinstance
//! exactly when the subinstance satisfies `q`. For a (monotone) UCQ≠ this is
//! the disjunction, over the matches of `q` on `I`, of the conjunction of the
//! facts of the match; [`LineageBuilder`] materializes this circuit and then
//! compiles it into the paper's tractable representations:
//!
//! * a monotone lineage **circuit** (Definition 6.2),
//! * a reduced **OBDD** under a variable order derived from a tree or path
//!   decomposition of the instance (the \[35\]-style order used by
//!   Theorems 6.5 / 6.7: facts are ordered by the decomposition bag that
//!   covers them, so on bounded-pathwidth instances the orders of facts
//!   relevant to distant bags never interleave and the width stays bounded),
//! * a **d-DNNF** obtained from the OBDD (every decision node is a
//!   deterministic OR of two decomposable ANDs),
//! * a node in the shared [`treelineage_dd`] engine
//!   ([`LineageBuilder::dd`] / [`LineageBuilder::compile_dd`]): the same
//!   function under the same order, but hash-consed into a store with
//!   complement edges and a persistent operation cache, which is what the
//!   probability / counting pipelines and the benches run on.
//!
//! See DESIGN.md §2 (items 1 and 4) for how this relates to the paper's
//! automaton-based linear-time construction: the functions represented are
//! identical and the OBDD widths — the quantities measured by the Section 8
//! experiments — are canonical per order, so the upper- and lower-bound
//! experiments exercise exactly the objects the paper reasons about.

use std::collections::{BTreeMap, BTreeSet};
use treelineage_circuit::{Circuit, Dnnf, GateId, Obdd, Ref, VarId, Vtree};
use treelineage_engine::{validate_insert, validate_retract, EngineConfig, UpdateError};
use treelineage_graph::TreeDecomposition;
use treelineage_instance::{Fact, FactId, Instance};
use treelineage_num::{BigUint, ErrorInterval, Rational};
use treelineage_query::{matching, UnionOfConjunctiveQueries};

/// The compilation backend a lineage-consuming pipeline routes through (see
/// DESIGN.md "Backend selection").
///
/// All backends represent the same Boolean function and give exactly equal
/// answers (the cross-backend differential suites pin this); they differ in
/// how the function is compiled — the first three enumerate query matches
/// and compile the match circuit under a decomposition-derived variable
/// order, while [`LineageBackend::Automaton`] goes through the tree
/// encoding and never touches a match.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LineageBackend {
    /// The per-diagram reduced OBDD of `treelineage_circuit::Obdd` — the
    /// literal-to-the-paper object (Definition 6.4), kept as the
    /// differential-testing oracle.
    LegacyObdd,
    /// The shared hash-consed decision-diagram engine (`treelineage_dd`)
    /// with complement edges and a persistent operation cache — the default
    /// fast path.
    #[default]
    SharedDd,
    /// The structured d-DNNF (d-SDNNF) lineage of Theorem 6.11: a
    /// materialized circuit artifact with a vtree structure witness,
    /// supporting one-pass probability, weighted model counting over
    /// general weights (after its smoothing pass) and one-pass model
    /// counting — linear in the circuit size per evaluation.
    StructuredDnnf,
    /// The paper's Section 6 pipeline end to end (Theorems 6.3 / 6.11 made
    /// constructive by `treelineage_encoding`): tree-encode the instance
    /// along its decomposition, compile the query into a deterministic
    /// bottom-up tree automaton on the encoding alphabet, and read the
    /// lineage off the automaton's provenance as a smooth d-SDNNF — *never
    /// materializing query matches*, so the per-instance cost is linear in
    /// the instance for bounded-width families even where match
    /// enumeration is super-polynomial.
    Automaton,
}

/// The lineage compiled into a structured d-DNNF (d-SDNNF): the circuit
/// artifact behind [`LineageBackend::StructuredDnnf`].
///
/// Two variants of the circuit are kept: the raw export (structured by
/// [`StructuredLineage::vtree`], used for probability evaluation) and its
/// smoothed form over the full fact universe (used for one-pass model
/// counting and general-weight WMC, where skipped variables must be
/// materialized). Every evaluation is a single bottom-up pass.
#[derive(Clone, Debug)]
pub struct StructuredLineage {
    dnnf: Dnnf,
    smoothed: Dnnf,
    vtree: Vtree,
    universe: Vec<VarId>,
}

impl StructuredLineage {
    /// The raw (unsmoothed) d-SDNNF.
    pub fn dnnf(&self) -> &Dnnf {
        &self.dnnf
    }

    /// The smoothed d-DNNF over the full fact universe.
    pub fn smoothed(&self) -> &Dnnf {
        &self.smoothed
    }

    /// The structure witness: the raw circuit is structured by this
    /// (right-linear, order-derived) vtree.
    pub fn vtree(&self) -> &Vtree {
        &self.vtree
    }

    /// The declared universe: every fact id of the instance, in the
    /// decomposition-derived order.
    pub fn universe(&self) -> &[VarId] {
        &self.universe
    }

    /// Number of gates of the raw d-SDNNF.
    pub fn size(&self) -> usize {
        self.dnnf.size()
    }

    /// Number of gates of the smoothed d-DNNF.
    pub fn smoothed_size(&self) -> usize {
        self.smoothed.size()
    }

    /// Query probability under independent per-fact probabilities: one pass
    /// over the raw circuit (probability weights need no smoothing).
    pub fn probability(&self, prob: &dyn Fn(VarId) -> Rational) -> Rational {
        self.dnnf.probability(prob)
    }

    /// Weighted model count with general per-literal weights: one pass over
    /// the smoothed circuit.
    pub fn wmc(
        &self,
        pos: &dyn Fn(VarId) -> Rational,
        neg: &dyn Fn(VarId) -> Rational,
    ) -> Rational {
        self.smoothed.wmc(pos, neg)
    }

    /// Float fast-path of [`StructuredLineage::probability`]: the same pass
    /// in certified interval arithmetic. The returned interval is guaranteed
    /// to contain the exact rational answer.
    pub fn probability_interval(&self, prob: &dyn Fn(VarId) -> ErrorInterval) -> ErrorInterval {
        self.dnnf.probability_interval(prob)
    }

    /// Float fast-path of [`StructuredLineage::wmc`] over the smoothed
    /// circuit, with the same containment guarantee as
    /// [`StructuredLineage::probability_interval`].
    pub fn wmc_interval(
        &self,
        pos: &dyn Fn(VarId) -> ErrorInterval,
        neg: &dyn Fn(VarId) -> ErrorInterval,
    ) -> ErrorInterval {
        self.smoothed.wmc_interval(pos, neg)
    }

    /// Number of satisfying subinstances over the full fact universe: one
    /// integer pass over the smoothed circuit.
    pub fn model_count(&self) -> BigUint {
        self.smoothed.count_models_smooth()
    }
}

/// Errors reported by lineage construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineageError {
    /// The query's signature differs from the instance's.
    SignatureMismatch,
    /// The provided decomposition is not a valid decomposition of the
    /// instance's Gaifman graph.
    InvalidDecomposition(String),
    /// The automaton backend failed to tree-encode the instance.
    Encoding(treelineage_encoding::EncodingError),
    /// The automaton backend failed to compile the query (state budget,
    /// representation limits, or an MSO formula outside the fragment).
    QueryCompile(treelineage_encoding::CompileError),
    /// The automaton backend's provenance compilation failed (internal: the
    /// encoder's invariants should rule this out).
    Provenance(String),
}

impl std::fmt::Display for LineageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineageError::SignatureMismatch => write!(f, "query and instance signatures differ"),
            LineageError::InvalidDecomposition(e) => write!(f, "invalid decomposition: {e}"),
            LineageError::Encoding(e) => write!(f, "tree encoding failed: {e}"),
            LineageError::QueryCompile(e) => write!(f, "query compilation failed: {e}"),
            LineageError::Provenance(e) => write!(f, "provenance compilation failed: {e}"),
        }
    }
}

impl std::error::Error for LineageError {}

impl From<treelineage_encoding::EncodingError> for LineageError {
    fn from(e: treelineage_encoding::EncodingError) -> Self {
        LineageError::Encoding(e)
    }
}

impl From<treelineage_encoding::CompileError> for LineageError {
    fn from(e: treelineage_encoding::CompileError) -> Self {
        LineageError::QueryCompile(e)
    }
}

/// The lineage produced by the automaton pipeline
/// ([`LineageBackend::Automaton`]): the provenance d-SDNNF of the
/// query-derived deterministic tree automaton on the instance's uncertain
/// tree encoding, whose events are exactly the instance's fact ids.
///
/// The artifact is smooth by construction over the full fact universe, so
/// probability, general-weight WMC and model counting are all single
/// bottom-up passes. Unlike every other backend, *no query match is ever
/// materialized* on the way here: the instance only contributes its linear
/// tree encoding.
#[derive(Clone, Debug)]
pub struct AutomatonLineage {
    lineage: treelineage_engine::ParallelDnnf,
    /// Worker threads the evaluation passes fan out over (from the
    /// builder's [`EngineConfig`]; 1 = sequential).
    threads: usize,
    automaton_states: usize,
    tree_nodes: usize,
}

impl AutomatonLineage {
    /// The certified smooth d-SDNNF over the fact ids.
    pub fn structured(&self) -> &treelineage_automata::StructuredDnnf {
        self.lineage.structured()
    }

    /// The fragment partition of the provenance circuit (empty when the
    /// lineage was compiled sequentially), plus the partition-aware
    /// evaluation wrapper.
    pub fn parallel(&self) -> &treelineage_engine::ParallelDnnf {
        &self.lineage
    }

    /// Number of states of the materialized tree automaton.
    pub fn automaton_states(&self) -> usize {
        self.automaton_states
    }

    /// Number of nodes of the tree encoding.
    pub fn tree_nodes(&self) -> usize {
        self.tree_nodes
    }

    /// Number of gates of the provenance circuit.
    pub fn size(&self) -> usize {
        self.lineage.size()
    }

    /// Query probability under independent per-fact probabilities: one
    /// bottom-up pass, fragment-parallel when the lineage was compiled with
    /// `threads > 1` (exact arithmetic: results are identical to the
    /// sequential pass at every thread count).
    pub fn probability(&self, prob: &(dyn Fn(VarId) -> Rational + Sync)) -> Rational {
        self.lineage.probability(prob, self.threads)
    }

    /// Weighted model count with general per-literal weights: one pass (the
    /// circuit is smooth by construction), fragment-parallel like
    /// [`AutomatonLineage::probability`].
    pub fn wmc(
        &self,
        pos: &(dyn Fn(VarId) -> Rational + Sync),
        neg: &(dyn Fn(VarId) -> Rational + Sync),
    ) -> Rational {
        self.lineage.wmc(pos, neg, self.threads)
    }

    /// Number of satisfying subinstances over the full fact universe: one
    /// integer pass, fragment-parallel like
    /// [`AutomatonLineage::probability`].
    pub fn model_count(&self) -> BigUint {
        self.lineage.model_count(self.threads)
    }

    /// Float fast-path of [`AutomatonLineage::probability`]: the same
    /// fragment-parallel pass in certified interval arithmetic. The returned
    /// interval is guaranteed to contain the exact rational answer and is
    /// bit-identical at every thread count.
    pub fn probability_interval(
        &self,
        prob: &(dyn Fn(VarId) -> ErrorInterval + Sync),
    ) -> ErrorInterval {
        self.lineage.probability_interval(prob, self.threads)
    }

    /// Float fast-path of [`AutomatonLineage::wmc`], with the same
    /// containment guarantee as [`AutomatonLineage::probability_interval`].
    pub fn wmc_interval(
        &self,
        pos: &(dyn Fn(VarId) -> ErrorInterval + Sync),
        neg: &(dyn Fn(VarId) -> ErrorInterval + Sync),
    ) -> ErrorInterval {
        self.lineage.wmc_interval(pos, neg, self.threads)
    }
}

/// Builder for the lineage of a UCQ≠ on an instance, with compilation into
/// circuits, OBDDs and d-DNNFs.
pub struct LineageBuilder<'a> {
    query: &'a UnionOfConjunctiveQueries,
    instance: &'a Instance,
    decomposition: Option<TreeDecomposition>,
    engine_config: EngineConfig,
}

impl<'a> LineageBuilder<'a> {
    /// Starts building the lineage of `query` on `instance`.
    pub fn new(
        query: &'a UnionOfConjunctiveQueries,
        instance: &'a Instance,
    ) -> Result<Self, LineageError> {
        if query.signature() != instance.signature() {
            return Err(LineageError::SignatureMismatch);
        }
        Ok(LineageBuilder {
            query,
            instance,
            decomposition: None,
            engine_config: EngineConfig::default(),
        })
    }

    /// Routes the automaton pipeline through the parallel engine with the
    /// given configuration: `threads > 1` compiles and evaluates the
    /// provenance d-SDNNF over disjoint subtrees on worker threads
    /// (bit-identical results), and `state_budget` bounds the query
    /// compiler. The default configuration reproduces the sequential
    /// behaviour exactly.
    pub fn with_engine_config(mut self, config: EngineConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// Supplies a tree decomposition of the instance's Gaifman graph to drive
    /// the OBDD variable order (otherwise a heuristic decomposition is
    /// computed). The decomposition's vertices must index the instance's
    /// sorted active domain (as produced by
    /// [`Instance::gaifman_graph`]).
    pub fn with_decomposition(mut self, td: TreeDecomposition) -> Result<Self, LineageError> {
        let (graph, _) = self.instance.gaifman_graph();
        td.validate(&graph)
            .map_err(|e| LineageError::InvalidDecomposition(e.to_string()))?;
        self.decomposition = Some(td);
        Ok(self)
    }

    /// The matches of the query on the instance (each a set of fact ids).
    pub fn matches(&self) -> BTreeSet<BTreeSet<FactId>> {
        matching::all_matches(self.query, self.instance)
    }

    /// Checks whether inserting `fact` at `probability` would be accepted
    /// by an update-capable serving session over this builder's instance
    /// (see [`treelineage_engine::EvalSession::insert_fact`]). With an
    /// explicit decomposition the check is domain-pinned: the fact's
    /// elements must already be in the decomposition's domain and covered
    /// by one of its bags, because an incremental recompile cannot shift
    /// the pinned vertex numbering. Without one, only the instance-level
    /// checks (arity, duplicate, probability range) apply — the heuristic
    /// decomposition is recomputed per compile and absorbs any fact.
    pub fn supports_insert(&self, fact: &Fact, probability: &Rational) -> Result<(), UpdateError> {
        let plan = match &self.decomposition {
            Some(td) => Some(
                treelineage_encoding::EncodingPlan::new_trusted(self.instance, td)
                    .map_err(|e| UpdateError::Encoding(e.to_string()))?,
            ),
            None => None,
        };
        validate_insert(self.instance, plan.as_ref(), fact, probability)
    }

    /// Checks whether retracting `fact` would be accepted by an
    /// update-capable serving session over this builder's instance (see
    /// [`treelineage_engine::EvalSession::retract_fact`]). With an explicit
    /// decomposition the retraction must not orphan a domain element
    /// (domain-pinning, as for [`LineageBuilder::supports_insert`]);
    /// without one, only the fact-id range is checked.
    pub fn supports_retract(&self, fact: FactId) -> Result<(), UpdateError> {
        validate_retract(self.instance, fact, self.decomposition.is_some())
    }

    /// The monotone lineage circuit: the disjunction over matches of the
    /// conjunction of their facts. Variables are fact ids.
    pub fn circuit(&self) -> Circuit {
        let mut circuit = Circuit::new();
        let matches = self.matches();
        let mut disjuncts: Vec<GateId> = Vec::with_capacity(matches.len());
        for m in &matches {
            let conj: Vec<GateId> = m.iter().map(|f| circuit.var(f.0)).collect();
            let gate = if conj.len() == 1 {
                conj[0]
            } else {
                circuit.and(conj)
            };
            disjuncts.push(gate);
        }
        let output = match disjuncts.len() {
            0 => circuit.constant(false),
            1 => disjuncts[0],
            _ => circuit.or(disjuncts),
        };
        circuit.set_output(output);
        circuit
    }

    /// The decomposition used for variable orders (provided or heuristic).
    fn decomposition_or_default(&self) -> TreeDecomposition {
        match &self.decomposition {
            Some(td) => td.clone(),
            None => {
                let (graph, _) = self.instance.gaifman_graph();
                treelineage_graph::treewidth::treewidth_upper_bound(&graph).1
            }
        }
    }

    /// The variable (fact) order derived from the decomposition, in the style
    /// of \[35\]: bags are laid out by a depth-first traversal (children
    /// visited in increasing subtree size) and every fact is placed at the
    /// first bag containing all of its elements.
    pub fn variable_order(&self) -> Vec<VarId> {
        let td = self.decomposition_or_default();
        variable_order_from_decomposition(self.instance, &td)
    }

    /// [`LineageBuilder::variable_order`] extended with the facts that never
    /// occur in a match, so model counts range over all facts.
    fn full_variable_order(&self) -> Vec<VarId> {
        let mut order = self.variable_order();
        let present: BTreeSet<VarId> = order.iter().copied().collect();
        for f in self.instance.fact_ids() {
            if !present.contains(&f.0) {
                order.push(f.0);
            }
        }
        order
    }

    /// The reduced OBDD of the lineage under [`LineageBuilder::variable_order`]
    /// (the legacy per-diagram construction, kept as the literal-to-the-paper
    /// object and differential-testing oracle; the engine the pipelines run
    /// on is [`LineageBuilder::dd`]).
    pub fn obdd(&self) -> Obdd {
        Obdd::from_circuit(&self.circuit(), self.full_variable_order())
    }

    /// A fresh shared-engine manager over this lineage's variable order
    /// (every fact of the instance is in the order). Compile with
    /// [`LineageBuilder::compile_dd`]; reuse the manager across related
    /// compilations to profit from its persistent operation cache.
    pub fn dd_manager(&self) -> treelineage_dd::Manager {
        treelineage_dd::Manager::new(self.full_variable_order())
    }

    /// Compiles the lineage into a shared engine manager (created by
    /// [`LineageBuilder::dd_manager`] on an instance with the same fact
    /// order) and returns the root node. Recompilations hit the manager's
    /// persistent cache.
    pub fn compile_dd(&self, manager: &mut treelineage_dd::Manager) -> treelineage_dd::NodeId {
        manager.compile_circuit(&self.circuit())
    }

    /// One-shot compilation into the shared engine: a fresh manager plus the
    /// root node of the lineage.
    pub fn dd(&self) -> (treelineage_dd::Manager, treelineage_dd::NodeId) {
        let mut manager = self.dd_manager();
        let root = self.compile_dd(&mut manager);
        (manager, root)
    }

    /// A d-DNNF for the lineage, obtained by viewing the (reduced) OBDD as a
    /// circuit: every decision node `(v, lo, hi)` becomes the deterministic
    /// OR of the decomposable ANDs `v ∧ hi` and `¬v ∧ lo`.
    pub fn ddnnf(&self) -> Dnnf {
        let obdd = self.obdd();
        let circuit = obdd_to_circuit(&obdd);
        Dnnf::from_trusted_circuit(circuit).expect("OBDD-derived circuits are d-DNNFs")
    }

    /// Compiles the lineage into a structured d-DNNF (the
    /// [`LineageBackend::StructuredDnnf`] artifact): the shared dd engine
    /// compiles the lineage under the decomposition-derived order, the
    /// result is exported as a d-DNNF circuit (deterministic ORs over
    /// decomposable decision branches), a smoothing pass materializes the
    /// full fact universe for one-pass counting, and the right-linear vtree
    /// over the order is attached as the structure witness.
    pub fn structured_dnnf(&self) -> StructuredLineage {
        let (manager, root) = self.dd();
        let order = manager.order().to_vec();
        let dnnf = Dnnf::from_trusted_circuit(manager.export_dnnf(root))
            .expect("dd-exported circuits are d-DNNFs");
        let smoothed = dnnf.smooth(&order);
        let vtree = Vtree::right_linear(&order);
        StructuredLineage {
            dnnf,
            smoothed,
            vtree,
            universe: order,
        }
    }

    /// Compiles the lineage through the paper's Section 6 automaton
    /// pipeline ([`LineageBackend::Automaton`]): tree-encode the instance
    /// along the decomposition, compile the query into a deterministic
    /// bottom-up tree automaton over the encoding alphabet
    /// (`treelineage_encoding::compile_ucq`), and extract the provenance
    /// d-SDNNF of the automaton on the uncertain encoding
    /// (`treelineage_automata::compile_structured_dnnf`). No query match is
    /// ever materialized; the per-instance work is linear in the instance
    /// for bounded-width families.
    pub fn automaton_lineage(&self) -> Result<AutomatonLineage, LineageError> {
        let td = self.decomposition_or_default();
        // Trusted: a supplied decomposition was validated by
        // `with_decomposition`, and the heuristic fallback is valid by
        // construction — re-validating here would double the exact cost the
        // near-linear validate keeps off this path.
        let telemetry = &self.engine_config.telemetry;
        let encoding = treelineage_encoding::encode_traced(self.instance, &td, telemetry)?;
        let mut compiled = treelineage_encoding::compile_ucq(
            self.query,
            encoding.alphabet(),
            treelineage_encoding::CompileOptions {
                state_budget: self.engine_config.state_budget,
                telemetry: telemetry.clone(),
            },
        )?;
        let automaton = compiled.automaton_for(encoding.tree())?;
        let lineage = if self.engine_config.threads > 1 {
            treelineage_engine::compile_structured_dnnf_parallel(
                &automaton,
                encoding.tree(),
                &self.engine_config,
            )
            .map_err(|e| LineageError::Provenance(e.to_string()))?
        } else {
            treelineage_engine::ParallelDnnf::sequential(
                treelineage_automata::compile_structured_dnnf_traced(
                    &automaton,
                    encoding.tree(),
                    telemetry,
                )
                .map_err(|e| LineageError::Provenance(e.to_string()))?,
            )
        };
        Ok(AutomatonLineage {
            lineage,
            threads: self.engine_config.threads,
            automaton_states: automaton.state_count(),
            tree_nodes: encoding.node_count(),
        })
    }
}

/// Derives a fact order from a tree decomposition of the instance's Gaifman
/// graph: a depth-first layout of the bags (children in increasing subtree
/// size, mirroring the in-order traversal ΠR of \[35\]) and, within the layout,
/// facts attached to the first bag covering them. The implementation lives
/// in [`treelineage_engine::variable_order_from_decomposition`] (shared
/// with the engine's dd shards); this re-exported delegate keeps the
/// historical `treelineage` entry point.
pub fn variable_order_from_decomposition(
    instance: &Instance,
    td: &TreeDecomposition,
) -> Vec<VarId> {
    treelineage_engine::variable_order_from_decomposition(instance, td)
}

/// Converts a reduced OBDD into an equivalent circuit that satisfies the
/// d-DNNF conditions: each decision node on variable `v` with children
/// `lo` / `hi` becomes `(v ∧ hi') ∨ (¬v ∧ lo')`.
pub fn obdd_to_circuit(obdd: &Obdd) -> Circuit {
    let mut circuit = Circuit::new();
    let mut memo: BTreeMap<String, GateId> = BTreeMap::new();
    let output = obdd_node_to_gate(obdd, obdd.root(), &mut circuit, &mut memo);
    circuit.set_output(output);
    circuit
}

fn obdd_node_to_gate(
    obdd: &Obdd,
    node: Ref,
    circuit: &mut Circuit,
    memo: &mut BTreeMap<String, GateId>,
) -> GateId {
    let key = format!("{node:?}");
    if let Some(&g) = memo.get(&key) {
        return g;
    }
    let gate = match node {
        Ref::False => circuit.constant(false),
        Ref::True => circuit.constant(true),
        Ref::Node(_) => {
            let (var, lo, hi) = obdd_node_parts(obdd, node);
            let lo_gate = obdd_node_to_gate(obdd, lo, circuit, memo);
            let hi_gate = obdd_node_to_gate(obdd, hi, circuit, memo);
            let v = circuit.var(var);
            let not_v = circuit.not(v);
            let hi_branch = circuit.and(vec![v, hi_gate]);
            let lo_branch = circuit.and(vec![not_v, lo_gate]);
            circuit.or(vec![hi_branch, lo_branch])
        }
    };
    memo.insert(key, gate);
    gate
}

/// Accesses the (variable, lo, hi) decomposition of an OBDD decision node by
/// probing evaluation — the `Obdd` type does not expose its node table, so we
/// reconstruct the Shannon expansion through its public API.
fn obdd_node_parts(obdd: &Obdd, node: Ref) -> (VarId, Ref, Ref) {
    obdd.decision_parts(node)
        .expect("internal node must have decision parts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_instance::{encodings, ProbabilityValuation, Signature};
    use treelineage_num::Rational;
    use treelineage_query::parse_query;

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    fn chain_instance(n: usize) -> Instance {
        let sig = rst();
        let mut inst = Instance::new(sig);
        for i in 0..n as u64 {
            inst.add_fact_by_name("R", &[i]);
            inst.add_fact_by_name("S", &[i, i + 1]);
            inst.add_fact_by_name("T", &[i + 1]);
        }
        inst
    }

    fn check_lineage_against_bruteforce(query: &UnionOfConjunctiveQueries, instance: &Instance) {
        let builder = LineageBuilder::new(query, instance).unwrap();
        let circuit = builder.circuit();
        let obdd = builder.obdd();
        let ddnnf = builder.ddnnf();
        let structured = builder.structured_dnnf();
        let automaton = builder.automaton_lineage().unwrap();
        let (manager, root) = builder.dd();
        let n = instance.fact_count();
        assert!(n <= 16, "oracle check limited to 16 facts");
        for mask in 0u32..(1 << n) {
            let world: BTreeSet<FactId> =
                (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
            let expected = matching::satisfied_in_world(query, instance, &world);
            let world_vars: BTreeSet<usize> = world.iter().map(|f| f.0).collect();
            assert_eq!(
                circuit.evaluate_set(&world_vars),
                expected,
                "circuit, mask {mask}"
            );
            assert_eq!(
                obdd.evaluate_set(&world_vars),
                expected,
                "obdd, mask {mask}"
            );
            assert_eq!(
                ddnnf.circuit().evaluate_set(&world_vars),
                expected,
                "ddnnf, mask {mask}"
            );
            assert_eq!(
                manager.evaluate(root, &world_vars),
                expected,
                "dd, mask {mask}"
            );
            assert_eq!(
                structured.dnnf().circuit().evaluate_set(&world_vars),
                expected,
                "structured, mask {mask}"
            );
            assert_eq!(
                structured.smoothed().circuit().evaluate_set(&world_vars),
                expected,
                "smoothed structured, mask {mask}"
            );
            assert_eq!(
                automaton
                    .structured()
                    .dnnf()
                    .circuit()
                    .evaluate_set(&world_vars),
                expected,
                "automaton pipeline, mask {mask}"
            );
        }
        // The automaton pipeline's artifact counts the same models without
        // ever having enumerated a query match.
        assert_eq!(
            automaton.model_count().to_u64(),
            obdd.count_models().to_u64()
        );
        assert!(automaton.automaton_states() > 0);
        assert!(automaton.tree_nodes() > 0);
        // The structured artifact is certified: smooth where claimed,
        // structured by its vtree, and counting through one integer pass
        // agrees with the other backends.
        assert!(structured.smoothed().is_smooth());
        assert!(structured
            .vtree()
            .respects(structured.dnnf().circuit())
            .is_ok());
        assert_eq!(
            structured.model_count().to_u64(),
            obdd.count_models().to_u64()
        );
        // The shared engine reports the same canonical width/size/count as
        // the legacy reduced OBDD under the same order.
        assert_eq!(manager.level_sizes(root), obdd.level_sizes());
        assert_eq!(manager.width(root), obdd.width());
        assert_eq!(manager.size(root), obdd.size());
        assert_eq!(
            manager.count_models(root).to_u64(),
            obdd.count_models().to_u64()
        );
    }

    #[test]
    fn lineage_of_unsafe_query_on_small_chain() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let inst = chain_instance(3);
        check_lineage_against_bruteforce(&q, &inst);
    }

    #[test]
    fn lineage_of_ucq_with_disequality() {
        let sig = rst();
        let q = parse_query(&sig, "S(x, y), S(y, z), x != z | R(x), T(x)").unwrap();
        let inst = chain_instance(3);
        check_lineage_against_bruteforce(&q, &inst);
    }

    #[test]
    fn lineage_respects_query_with_no_matches() {
        let sig = rst();
        let q = parse_query(&sig, "T(x), S(x, y), R(y)").unwrap();
        let inst = chain_instance(2);
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        assert!(builder.matches().is_empty());
        let obdd = builder.obdd();
        assert_eq!(obdd.count_models().to_u64(), Some(0));
    }

    #[test]
    fn obdd_width_is_small_on_path_shaped_instances() {
        // The unsafe-but-easy-on-paths query R(x), S(x,y), T(y): on a chain
        // instance its lineage has a constant-width OBDD under the
        // decomposition-derived order (Theorem 6.7's phenomenon).
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let mut widths = Vec::new();
        for n in [4usize, 8, 16, 32] {
            let inst = chain_instance(n);
            let builder = LineageBuilder::new(&q, &inst).unwrap();
            widths.push(builder.obdd().width());
        }
        // Constant width: the width must not grow with n.
        assert_eq!(widths[2], widths[3], "widths {widths:?}");
        assert!(widths[3] <= 8, "widths {widths:?}");
    }

    #[test]
    fn probability_via_obdd_matches_possible_worlds() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let inst = chain_instance(2);
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        let obdd = builder.obdd();
        let valuation = ProbabilityValuation::uniform(&inst, Rational::from_ratio_u64(1, 3));
        let expected =
            valuation.probability_of(|world| matching::satisfied_in_world(&q, &inst, world));
        let actual = obdd.probability(&|v| valuation.probability(FactId(v)).clone());
        assert_eq!(actual, expected);
    }

    #[test]
    fn update_support_checks_mirror_the_session_rules() {
        let sig = rst();
        let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
        let inst = chain_instance(2);
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        let r = sig.relation_by_name("R").unwrap();
        let s = sig.relation_by_name("S").unwrap();
        // Without a pinned decomposition, new elements are fine but
        // duplicates, arity and probability-range violations are not.
        assert_eq!(
            builder.supports_insert(
                &Fact::new(r, vec![treelineage_instance::Element(9)]),
                &Rational::one_half()
            ),
            Ok(())
        );
        assert_eq!(
            builder.supports_insert(
                &Fact::new(r, vec![treelineage_instance::Element(0)]),
                &Rational::one_half()
            ),
            Err(UpdateError::DuplicateFact(FactId(0)))
        );
        assert_eq!(
            builder.supports_insert(&Fact::new(r, vec![]), &Rational::one_half()),
            Err(UpdateError::ArityMismatch {
                expected: 1,
                got: 0
            })
        );
        assert_eq!(
            builder.supports_retract(FactId(inst.fact_count())),
            Err(UpdateError::UnknownFact(FactId(inst.fact_count())))
        );
        assert_eq!(builder.supports_retract(FactId(0)), Ok(()));
        // With the pinned heuristic decomposition, a fact over a new
        // element is a typed rejection and a retraction may not orphan a
        // domain element.
        let (graph, _) = inst.gaifman_graph();
        let td = treelineage_graph::treewidth::treewidth_upper_bound(&graph).1;
        let pinned = LineageBuilder::new(&q, &inst)
            .unwrap()
            .with_decomposition(td)
            .unwrap();
        assert_eq!(
            pinned.supports_insert(
                &Fact::new(
                    s,
                    vec![
                        treelineage_instance::Element(0),
                        treelineage_instance::Element(9)
                    ]
                ),
                &Rational::one_half()
            ),
            Err(UpdateError::NewElement(treelineage_instance::Element(9)))
        );
        // Element 2 lives only in S(1, 2): retracting it under a pinned
        // decomposition would orphan the element.
        let mut tail = Instance::new(sig.clone());
        tail.add_fact_by_name("R", &[0]);
        tail.add_fact_by_name("S", &[0, 1]);
        tail.add_fact_by_name("S", &[1, 2]);
        let (tail_graph, _) = tail.gaifman_graph();
        let tail_td = treelineage_graph::treewidth::treewidth_upper_bound(&tail_graph).1;
        let tail_builder = LineageBuilder::new(&q, &tail)
            .unwrap()
            .with_decomposition(tail_td)
            .unwrap();
        assert_eq!(
            tail_builder.supports_retract(FactId(2)),
            Err(UpdateError::OrphanedElement(treelineage_instance::Element(
                2
            )))
        );
        assert_eq!(tail_builder.supports_retract(FactId(0)), Ok(()));
    }

    #[test]
    fn signature_mismatch_is_rejected() {
        let q = parse_query(&rst(), "R(x)").unwrap();
        let other_sig = Signature::builder().relation("R", 1).build();
        let inst = Instance::new(other_sig);
        assert_eq!(
            LineageBuilder::new(&q, &inst).err(),
            Some(LineageError::SignatureMismatch)
        );
    }

    #[test]
    fn explicit_decomposition_is_validated() {
        let sig = Signature::builder().relation("S", 2).build();
        let s = sig.relation_by_name("S").unwrap();
        let inst = encodings::grid_instance(&sig, s, 2, 3);
        let q = parse_query(&sig, "S(x, y)").unwrap();
        let bad = TreeDecomposition::new();
        let result = LineageBuilder::new(&q, &inst)
            .unwrap()
            .with_decomposition(bad);
        assert!(matches!(result, Err(LineageError::InvalidDecomposition(_))));
    }

    #[test]
    fn variable_order_covers_all_facts() {
        let sig = Signature::builder().relation("S", 2).build();
        let s = sig.relation_by_name("S").unwrap();
        let inst = encodings::grid_instance(&sig, s, 3, 3);
        let q = parse_query(&sig, "S(x, y), S(y, z), x != z").unwrap();
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        let obdd = builder.obdd();
        assert_eq!(obdd.order().len(), inst.fact_count());
        let mut sorted = obdd.order().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..inst.fact_count()).collect::<Vec<_>>());
    }
}
