//! Probability evaluation on tuple-independent databases (Definition 3.1,
//! Theorem 3.2 and Theorem 4.2's tractable side).
//!
//! The probability of a UCQ≠ on a TID instance is the total weight of the
//! possible worlds (fact subsets) satisfying the query. [`ProbabilityEvaluator`]
//! computes it exactly, over [`Rational`] numbers, by compiling the query
//! lineage (see [`crate::lineage`]) into the shared [`treelineage_dd`]
//! engine and evaluating the weighted model count of the resulting diagram
//! in time linear in its (shared) size — the "ra-linear modulo compilation"
//! pipeline that the paper's upper bounds describe. The legacy per-diagram
//! OBDD and the d-DNNF pipelines are kept alongside (they answer the same
//! queries and the benches time the engines against each other), and a
//! brute-force possible-worlds oracle is provided for testing.

use crate::lineage::{LineageBackend, LineageBuilder, LineageError};
use std::collections::BTreeSet;
use treelineage_graph::TreeDecomposition;
use treelineage_instance::{FactId, Instance, ProbabilityValuation};
use treelineage_num::{BigUint, ErrorInterval, Rational};
use treelineage_query::{matching, UnionOfConjunctiveQueries};

/// Exact probability evaluation for UCQ≠ queries on TID instances.
pub struct ProbabilityEvaluator<'a> {
    instance: &'a Instance,
    valuation: &'a ProbabilityValuation,
    decomposition: Option<TreeDecomposition>,
    backend: LineageBackend,
    engine_config: treelineage_engine::EngineConfig,
}

impl<'a> ProbabilityEvaluator<'a> {
    /// Creates an evaluator over the given instance and probability
    /// valuation, using the default [`LineageBackend::SharedDd`] backend.
    pub fn new(instance: &'a Instance, valuation: &'a ProbabilityValuation) -> Self {
        assert_eq!(
            valuation.len(),
            instance.fact_count(),
            "valuation must cover every fact"
        );
        ProbabilityEvaluator {
            instance,
            valuation,
            decomposition: None,
            backend: LineageBackend::default(),
            engine_config: treelineage_engine::EngineConfig::default(),
        }
    }

    /// Uses the given tree decomposition of the instance to drive lineage
    /// compilation (otherwise a heuristic one is computed).
    pub fn with_decomposition(mut self, td: TreeDecomposition) -> Self {
        self.decomposition = Some(td);
        self
    }

    /// Routes [`ProbabilityEvaluator::query_probability`] and
    /// [`ProbabilityEvaluator::model_count`] through the given lineage
    /// backend. All backends return exactly equal answers (pinned by the
    /// cross-backend differential suite); they differ in cost profile.
    pub fn with_backend(mut self, backend: LineageBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The backend the evaluator routes through.
    pub fn backend(&self) -> LineageBackend {
        self.backend
    }

    /// Routes the automaton backend through the parallel engine with the
    /// given configuration (thread count for subtree-parallel compile and
    /// evaluation, query-compiler state budget). All answers stay exactly
    /// equal to the sequential default at every thread count — the engine's
    /// determinism contract, pinned by `tests/parallel_differential.rs`.
    pub fn with_engine_config(mut self, config: treelineage_engine::EngineConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// The engine configuration the evaluator routes through.
    pub fn engine_config(&self) -> treelineage_engine::EngineConfig {
        self.engine_config.clone()
    }

    /// Checks whether inserting `fact` at `probability` would be accepted
    /// by an update-capable serving session over this evaluator's instance
    /// (see [`treelineage_engine::EvalSession::insert_fact`]). With an
    /// explicit decomposition the check is domain-pinned — the fact must
    /// live inside the decomposition's domain and be covered by a bag;
    /// without one, only the instance-level checks apply.
    pub fn supports_insert(
        &self,
        fact: &treelineage_instance::Fact,
        probability: &Rational,
    ) -> Result<(), treelineage_engine::UpdateError> {
        let plan = match &self.decomposition {
            Some(td) => Some(
                treelineage_encoding::EncodingPlan::new_trusted(self.instance, td)
                    .map_err(|e| treelineage_engine::UpdateError::Encoding(e.to_string()))?,
            ),
            None => None,
        };
        treelineage_engine::validate_insert(self.instance, plan.as_ref(), fact, probability)
    }

    /// Checks whether retracting `fact` would be accepted by an
    /// update-capable serving session over this evaluator's instance (see
    /// [`treelineage_engine::EvalSession::retract_fact`]): the id must be
    /// in range, and under an explicit decomposition the retraction must
    /// not orphan a domain element.
    pub fn supports_retract(&self, fact: FactId) -> Result<(), treelineage_engine::UpdateError> {
        treelineage_engine::validate_retract(self.instance, fact, self.decomposition.is_some())
    }

    /// The probability that the query holds, computed through the selected
    /// [`LineageBackend`] (by default the shared decision-diagram engine:
    /// the Theorem 6.5 / 6.7 pipeline of compiling the lineage under a
    /// decomposition-derived order and running one weighted model-counting
    /// pass; [`LineageBackend::StructuredDnnf`] instead materializes the
    /// Theorem 6.11 d-SDNNF and evaluates it in one linear pass).
    pub fn query_probability(
        &self,
        query: &UnionOfConjunctiveQueries,
    ) -> Result<Rational, LineageError> {
        match self.backend {
            LineageBackend::LegacyObdd => self.query_probability_via_legacy_obdd(query),
            LineageBackend::SharedDd => self.query_probability_via_dd(query),
            LineageBackend::StructuredDnnf => self.query_probability_via_structured_dnnf(query),
            LineageBackend::Automaton => self.query_probability_via_automaton(query),
        }
    }

    /// Float fast-path of [`ProbabilityEvaluator::query_probability`]: the
    /// same linear pass over the compiled lineage, but in certified `f64`
    /// interval arithmetic instead of exact big-rational arithmetic.
    ///
    /// Returns `(estimate, interval)` where `interval` is **guaranteed to
    /// contain the exact rational probability** (every gate combines its
    /// children's enclosures with outward-rounded interval operations, and
    /// each leaf gets the optimal `f64` bracket of its exact input
    /// probability) and `estimate` is the interval midpoint. The interval
    /// width is the certificate: a caller comparing against a decision
    /// threshold can trust any comparison the interval resolves, and only
    /// needs the exact [`ProbabilityEvaluator::query_probability`] when the
    /// threshold lands inside the interval — the float-first serving policy
    /// that [`treelineage_engine::EvalSession`] wires up as
    /// [`treelineage_engine::SessionBackend::FloatFirst`].
    ///
    /// Routed per backend: [`LineageBackend::Automaton`] runs the
    /// fragment-parallel interval pass over the provenance d-SDNNF (still
    /// bit-identical at every thread count); every other backend runs the
    /// sequential interval pass over the structured d-DNNF export.
    pub fn query_probability_f64(
        &self,
        query: &UnionOfConjunctiveQueries,
    ) -> Result<(f64, ErrorInterval), LineageError> {
        let weight = |v: usize| ErrorInterval::from_rational(self.valuation.probability(FactId(v)));
        let interval = match self.backend {
            LineageBackend::Automaton => self
                .builder(query)?
                .automaton_lineage()?
                .probability_interval(&weight),
            _ => self
                .builder(query)?
                .structured_dnnf()
                .probability_interval(&weight),
        };
        Ok((interval.midpoint(), interval))
    }

    /// The probability computed through the automaton pipeline (tree
    /// encoding + query→automaton compilation + provenance d-SDNNF; the
    /// Section 6 route that never materializes query matches), regardless
    /// of the selected backend.
    pub fn query_probability_via_automaton(
        &self,
        query: &UnionOfConjunctiveQueries,
    ) -> Result<Rational, LineageError> {
        let lineage = self.builder(query)?.automaton_lineage()?;
        Ok(lineage.probability(&|v| self.valuation.probability(FactId(v)).clone()))
    }

    /// The probability computed through the shared dd engine, regardless of
    /// the selected backend.
    pub fn query_probability_via_dd(
        &self,
        query: &UnionOfConjunctiveQueries,
    ) -> Result<Rational, LineageError> {
        let builder = self.builder(query)?;
        let (manager, root) = builder.dd();
        Ok(manager.probability(root, &|v| self.valuation.probability(FactId(v)).clone()))
    }

    /// The probability computed through the structured d-DNNF backend
    /// (compile to a d-SDNNF, then one linear evaluation pass), regardless
    /// of the selected backend.
    pub fn query_probability_via_structured_dnnf(
        &self,
        query: &UnionOfConjunctiveQueries,
    ) -> Result<Rational, LineageError> {
        let structured = self.builder(query)?.structured_dnnf();
        Ok(structured.probability(&|v| self.valuation.probability(FactId(v)).clone()))
    }

    /// The probability computed through the legacy per-diagram OBDD
    /// construction ([`treelineage_circuit::Obdd`]). Always equal to
    /// [`ProbabilityEvaluator::query_probability`]; kept as the
    /// paper-literal pipeline and for differential testing / benchmarking
    /// against the shared engine.
    pub fn query_probability_via_legacy_obdd(
        &self,
        query: &UnionOfConjunctiveQueries,
    ) -> Result<Rational, LineageError> {
        let obdd = self.builder(query)?.obdd();
        Ok(obdd.probability(&|v| self.valuation.probability(FactId(v)).clone()))
    }

    fn builder<'q>(
        &'q self,
        query: &'q UnionOfConjunctiveQueries,
    ) -> Result<LineageBuilder<'q>, LineageError> {
        let mut builder = LineageBuilder::new(query, self.instance)?
            .with_engine_config(self.engine_config.clone());
        if let Some(td) = &self.decomposition {
            builder = builder.with_decomposition(td.clone())?;
        }
        Ok(builder)
    }

    /// The probability that the query holds, computed through the d-DNNF
    /// lineage (Theorem 6.11 pipeline). Always equal to
    /// [`ProbabilityEvaluator::query_probability`]; exposed separately so the
    /// benchmarks can time the two pipelines independently.
    pub fn query_probability_via_ddnnf(
        &self,
        query: &UnionOfConjunctiveQueries,
    ) -> Result<Rational, LineageError> {
        let ddnnf = self.builder(query)?.ddnnf();
        Ok(ddnnf.probability(&|v| self.valuation.probability(FactId(v)).clone()))
    }

    /// Brute-force possible-worlds probability (the oracle of Definition 3.1);
    /// exponential, limited to 20 facts.
    pub fn query_probability_bruteforce(&self, query: &UnionOfConjunctiveQueries) -> Rational {
        self.valuation
            .probability_of(|world| matching::satisfied_in_world(query, self.instance, world))
    }

    /// Number of subinstances (possible worlds under the all-1/2 valuation,
    /// scaled by `2^{|I|}`) satisfying the query — the model counting problem
    /// related to probability evaluation by footnote 3 of the paper.
    /// Routed through the selected [`LineageBackend`]; the structured
    /// backend counts in one integer pass over its smoothed circuit.
    pub fn model_count(&self, query: &UnionOfConjunctiveQueries) -> Result<BigUint, LineageError> {
        let builder = self.builder(query)?;
        match self.backend {
            LineageBackend::LegacyObdd => Ok(builder.obdd().count_models()),
            LineageBackend::SharedDd => {
                let (manager, root) = builder.dd();
                Ok(manager.count_models(root))
            }
            LineageBackend::StructuredDnnf => Ok(builder.structured_dnnf().model_count()),
            LineageBackend::Automaton => Ok(builder.automaton_lineage()?.model_count()),
        }
    }

    /// General weighted model count: `Σ_worlds Π_facts (pos if present else
    /// neg)`, with weights that need not sum to one per fact (so this is
    /// strictly more general than [`ProbabilityEvaluator::query_probability`];
    /// e.g. `pos = neg = 1` counts models). One pass over a smooth circuit:
    /// the automaton pipeline's provenance d-SDNNF when the
    /// [`LineageBackend::Automaton`] backend is selected, the structured
    /// backend's smoothed d-DNNF otherwise.
    pub fn query_wmc(
        &self,
        query: &UnionOfConjunctiveQueries,
        pos: &(dyn Fn(FactId) -> Rational + Sync),
        neg: &(dyn Fn(FactId) -> Rational + Sync),
    ) -> Result<Rational, LineageError> {
        let builder = self.builder(query)?;
        match self.backend {
            LineageBackend::Automaton => {
                let lineage = builder.automaton_lineage()?;
                Ok(lineage.wmc(&|v| pos(FactId(v)), &|v| neg(FactId(v))))
            }
            _ => {
                let structured = builder.structured_dnnf();
                Ok(structured.wmc(&|v| pos(FactId(v)), &|v| neg(FactId(v))))
            }
        }
    }

    /// Brute-force general weighted model count (oracle); exponential,
    /// limited to 20 facts.
    pub fn query_wmc_bruteforce(
        &self,
        query: &UnionOfConjunctiveQueries,
        pos: &dyn Fn(FactId) -> Rational,
        neg: &dyn Fn(FactId) -> Rational,
    ) -> Rational {
        let n = self.instance.fact_count();
        assert!(n <= 20, "brute-force WMC limited to 20 facts");
        let mut total = Rational::zero();
        for mask in 0u64..(1u64 << n) {
            let world: BTreeSet<FactId> =
                (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
            if !matching::satisfied_in_world(query, self.instance, &world) {
                continue;
            }
            let mut weight = Rational::one();
            for i in 0..n {
                let f = FactId(i);
                if world.contains(&f) {
                    weight *= &pos(f);
                } else {
                    weight *= &neg(f);
                }
            }
            total += &weight;
        }
        total
    }

    /// Brute-force model count (oracle); limited to 20 facts.
    pub fn model_count_bruteforce(&self, query: &UnionOfConjunctiveQueries) -> BigUint {
        let n = self.instance.fact_count();
        assert!(n <= 20, "brute-force model counting limited to 20 facts");
        let mut count = 0u64;
        for mask in 0u64..(1u64 << n) {
            let world: BTreeSet<FactId> =
                (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
            if matching::satisfied_in_world(query, self.instance, &world) {
                count += 1;
            }
        }
        BigUint::from_u64(count)
    }
}

/// Standard (non-probabilistic) model checking, i.e. the evaluation problem
/// of Definition 5.1, for UCQ≠ queries: simply checks satisfaction on the
/// full instance. Linear-time in the number of homomorphism candidates for a
/// fixed query; exposed here so the Table 1 experiments can time it.
pub fn model_check(query: &UnionOfConjunctiveQueries, instance: &Instance) -> bool {
    matching::satisfied(query, instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_instance::{encodings, Signature};
    use treelineage_query::parse_query;

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    fn chain(n: usize) -> Instance {
        let mut inst = Instance::new(rst());
        for i in 0..n as u64 {
            inst.add_fact_by_name("R", &[i]);
            inst.add_fact_by_name("S", &[i, i + 1]);
            inst.add_fact_by_name("T", &[i + 1]);
        }
        inst
    }

    #[test]
    fn probability_matches_bruteforce_on_small_instances() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        for n in 1..=4usize {
            let inst = chain(n);
            let probs: Vec<f64> = (0..inst.fact_count())
                .map(|i| [0.5, 0.25, 0.75, 0.125][i % 4])
                .collect();
            let valuation = ProbabilityValuation::from_f64(&inst, &probs);
            let evaluator = ProbabilityEvaluator::new(&inst, &valuation);
            let expected = evaluator.query_probability_bruteforce(&q);
            assert_eq!(evaluator.query_probability(&q).unwrap(), expected, "n={n}");
            assert_eq!(
                evaluator.query_probability_via_ddnnf(&q).unwrap(),
                expected,
                "n={n}"
            );
            assert_eq!(
                evaluator.query_probability_via_legacy_obdd(&q).unwrap(),
                expected,
                "n={n}"
            );
        }
    }

    #[test]
    fn probability_of_certain_instance_is_model_checking() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let inst = chain(3);
        let valuation = ProbabilityValuation::all_certain(&inst);
        let evaluator = ProbabilityEvaluator::new(&inst, &valuation);
        let p = evaluator.query_probability(&q).unwrap();
        assert!(p.is_one());
        assert!(model_check(&q, &inst));
    }

    #[test]
    fn model_counting_matches_bruteforce() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y) | S(x, y), S(y, z), x != z").unwrap();
        let inst = chain(2);
        let valuation = ProbabilityValuation::all_one_half(&inst);
        let evaluator = ProbabilityEvaluator::new(&inst, &valuation);
        assert_eq!(
            evaluator.model_count(&q).unwrap().to_u64(),
            evaluator.model_count_bruteforce(&q).to_u64()
        );
        // Footnote 3: model count = 2^{|I|} * probability under all-1/2.
        let p = evaluator.query_probability(&q).unwrap();
        let scaled =
            &p * &Rational::from_biguint(treelineage_num::BigUint::pow2(inst.fact_count()));
        assert_eq!(
            scaled.numerator().magnitude().to_u64(),
            evaluator.model_count(&q).unwrap().to_u64()
        );
    }

    #[test]
    fn backend_routing_gives_equal_answers() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let inst = chain(3);
        let probs: Vec<f64> = (0..inst.fact_count())
            .map(|i| [0.5, 0.25, 0.75][i % 3])
            .collect();
        let valuation = ProbabilityValuation::from_f64(&inst, &probs);
        let reference =
            ProbabilityEvaluator::new(&inst, &valuation).query_probability_bruteforce(&q);
        for backend in [
            crate::LineageBackend::LegacyObdd,
            crate::LineageBackend::SharedDd,
            crate::LineageBackend::StructuredDnnf,
            crate::LineageBackend::Automaton,
        ] {
            let evaluator = ProbabilityEvaluator::new(&inst, &valuation).with_backend(backend);
            assert_eq!(evaluator.backend(), backend);
            assert_eq!(
                evaluator.query_probability(&q).unwrap(),
                reference,
                "{backend:?}"
            );
            assert_eq!(
                evaluator.model_count(&q).unwrap().to_u64(),
                evaluator.model_count_bruteforce(&q).to_u64(),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn float_fast_path_interval_contains_exact_on_every_backend() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let inst = chain(4);
        let probs: Vec<f64> = (0..inst.fact_count())
            .map(|i| [0.5, 0.25, 0.75, 0.125][i % 4])
            .collect();
        let valuation = ProbabilityValuation::from_f64(&inst, &probs);
        for backend in [
            crate::LineageBackend::LegacyObdd,
            crate::LineageBackend::SharedDd,
            crate::LineageBackend::StructuredDnnf,
            crate::LineageBackend::Automaton,
        ] {
            let evaluator = ProbabilityEvaluator::new(&inst, &valuation).with_backend(backend);
            let exact = evaluator.query_probability(&q).unwrap();
            let (estimate, interval) = evaluator.query_probability_f64(&q).unwrap();
            assert!(interval.contains(&exact), "{backend:?}");
            assert!(interval.contains_f64(estimate), "{backend:?}");
            assert!(interval.width() < 1e-12, "{backend:?}: {interval:?}");
        }
    }

    #[test]
    fn general_wmc_matches_bruteforce() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let inst = chain(2);
        let valuation = ProbabilityValuation::all_one_half(&inst);
        let evaluator = ProbabilityEvaluator::new(&inst, &valuation);
        // Weights that do not sum to 1 per fact.
        let pos = |f: FactId| Rational::from_ratio_u64(f.0 as u64 + 2, 3);
        let neg = |f: FactId| Rational::from_ratio_u64(1, f.0 as u64 + 1);
        assert_eq!(
            evaluator.query_wmc(&q, &pos, &neg).unwrap(),
            evaluator.query_wmc_bruteforce(&q, &pos, &neg)
        );
        // pos = neg = 1 counts models.
        let one = |_: FactId| Rational::one();
        assert_eq!(
            evaluator.query_wmc(&q, &one, &one).unwrap(),
            Rational::from_biguint(evaluator.model_count(&q).unwrap())
        );
    }

    #[test]
    fn grid_instance_probability_small() {
        // Tractable even on (small) high-treewidth instances; correctness is
        // what we check here, the complexity behaviour is the benches' job.
        let sig = Signature::builder().relation("S", 2).build();
        let s = sig.relation_by_name("S").unwrap();
        let inst = encodings::grid_instance(&sig, s, 2, 3);
        let q = parse_query(&sig, "S(x, y), S(y, z), x != z").unwrap();
        let valuation = ProbabilityValuation::all_one_half(&inst);
        let evaluator = ProbabilityEvaluator::new(&inst, &valuation);
        let expected = evaluator.query_probability_bruteforce(&q);
        assert_eq!(evaluator.query_probability(&q).unwrap(), expected);
    }

    #[test]
    fn evaluation_with_explicit_decomposition() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let inst = chain(3);
        let (graph, _) = inst.gaifman_graph();
        let (_, td) = treelineage_graph::treewidth::treewidth_upper_bound(&graph);
        let valuation = ProbabilityValuation::all_one_half(&inst);
        let evaluator = ProbabilityEvaluator::new(&inst, &valuation).with_decomposition(td);
        let expected = evaluator.query_probability_bruteforce(&q);
        assert_eq!(evaluator.query_probability(&q).unwrap(), expected);
    }
}
