//! # treelineage — tractable lineages on treelike instances
//!
//! This crate is the core of a from-scratch reproduction of
//! *Tractable Lineages on Treelike Instances: Limits and Extensions*
//! (Amarilli, Bourhis, Senellart — PODS 2016). It ties the workspace's
//! substrates together behind one API:
//!
//! * **Lineage construction** ([`LineageBuilder`]): the lineage of a UCQ≠ on
//!   an instance as a monotone circuit, a reduced OBDD under a
//!   decomposition-derived variable order (Theorems 6.5 / 6.7) and a d-DNNF
//!   (Theorem 6.11).
//! * **Probability evaluation** ([`ProbabilityEvaluator`]): exact query
//!   probability on tuple-independent databases through the compiled lineage
//!   (Theorem 3.2 / the tractable side of Theorem 4.2), plus model counting.
//! * **Match counting** ([`MatchCounter`]): counting interpretations of free
//!   second-order (selection) variables (Definition 5.6, Theorem 5.7's
//!   tractable side).
//!
//! The sibling crates provide the substrates (graphs and decompositions,
//! relational instances, query languages, Boolean function representations,
//! tree automata) and the paper's other directions (Datalog / relational
//! algebra provenance, safe queries and unfoldings, hardness gadgets and the
//! experiment harness). See the workspace `README.md`, `DESIGN.md` and
//! `EXPERIMENTS.md`.
//!
//! ```
//! use treelineage::prelude::*;
//!
//! // R(x), S(x,y), T(y) on the chain R(0), S(0,1), T(1).
//! let sig = Signature::builder()
//!     .relation("R", 1)
//!     .relation("S", 2)
//!     .relation("T", 1)
//!     .build();
//! let mut inst = Instance::new(sig.clone());
//! inst.add_fact_by_name("R", &[0]);
//! inst.add_fact_by_name("S", &[0, 1]);
//! inst.add_fact_by_name("T", &[1]);
//! let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
//!
//! let lineage = LineageBuilder::new(&q, &inst).unwrap();
//! assert_eq!(lineage.obdd().count_models().to_u64(), Some(1));
//!
//! let valuation = ProbabilityValuation::all_one_half(&inst);
//! let p = ProbabilityEvaluator::new(&inst, &valuation)
//!     .query_probability(&q)
//!     .unwrap();
//! assert_eq!(p, Rational::from_ratio_u64(1, 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counting;
mod lineage;
mod probability;

pub use counting::MatchCounter;
pub use lineage::{
    obdd_to_circuit, variable_order_from_decomposition, AutomatonLineage, LineageBackend,
    LineageBuilder, LineageError, StructuredLineage,
};
pub use probability::{model_check, ProbabilityEvaluator};
pub use treelineage_engine::{
    karp_luby_probability, karp_luby_sample_bound, validate_insert, validate_retract,
    CacheOccupancy, CircuitPartition, DecisionTier, EngineConfig, EngineError, EvalSession,
    KarpLubyEstimate, MetricsSnapshot, ParallelDnnf, ProbabilityRequest, Registry, SessionBackend,
    SessionStats, Span, SpanEvent, Telemetry, ThresholdDecision, ThresholdRequest, UpdateError,
    UpdateKind, UpdateReport, WmcRequest,
};

/// Convenience re-exports of the types most users need.
pub mod prelude {
    pub use crate::{
        model_check, AutomatonLineage, CacheOccupancy, EngineConfig, EvalSession, LineageBackend,
        LineageBuilder, LineageError, MatchCounter, MetricsSnapshot, ProbabilityEvaluator,
        SessionBackend, StructuredLineage, Telemetry, UpdateError, UpdateKind, UpdateReport,
    };
    pub use treelineage_circuit::{Circuit, Dnnf, Formula, Obdd, Vtree};
    pub use treelineage_dd::{Manager as DdManager, NodeId as DdNodeId, Stats as DdStats};
    pub use treelineage_graph::{Graph, TreeDecomposition};
    pub use treelineage_instance::{
        Element, FactId, Instance, ProbabilityValuation, RelationId, Signature,
        TupleIndependentDatabase,
    };
    pub use treelineage_num::{BigInt, BigUint, ErrorInterval, Rational};
    pub use treelineage_query::{
        parse_query, ConjunctiveQuery, MsoFormula, UnionOfConjunctiveQueries,
    };
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use treelineage_instance::encodings;
    use treelineage_query::matching;

    fn sig() -> Signature {
        Signature::builder()
            .relation("R", 2)
            .relation("S", 2)
            .relation("L", 1)
            .build()
    }

    fn queries() -> Vec<UnionOfConjunctiveQueries> {
        [
            "R(x, y), S(y, z)",
            "S(x, y), S(y, z), x != z",
            "L(x), R(x, y) | L(y), S(x, y)",
            "R(x, y), R(y, z), x != z | S(x, y), S(y, z), x != z",
        ]
        .iter()
        .map(|t| parse_query(&sig(), t).unwrap())
        .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn lineage_representations_agree_with_bruteforce(seed in 0u64..500, qi in 0usize..4) {
            let inst = encodings::random_treelike_instance(&sig(), 6, 2, seed);
            prop_assume!(inst.fact_count() <= 12 && inst.fact_count() > 0);
            let q = &queries()[qi];
            let builder = LineageBuilder::new(q, &inst).unwrap();
            let circuit = builder.circuit();
            let obdd = builder.obdd();
            let ddnnf = builder.ddnnf();
            for mask in 0u32..(1 << inst.fact_count()) {
                let world: BTreeSet<FactId> = (0..inst.fact_count())
                    .filter(|i| mask >> i & 1 == 1)
                    .map(FactId)
                    .collect();
                let expected = matching::satisfied_in_world(q, &inst, &world);
                let vars: BTreeSet<usize> = world.iter().map(|f| f.0).collect();
                prop_assert_eq!(circuit.evaluate_set(&vars), expected);
                prop_assert_eq!(obdd.evaluate_set(&vars), expected);
                prop_assert_eq!(ddnnf.circuit().evaluate_set(&vars), expected);
            }
        }

        #[test]
        fn probability_pipelines_agree(seed in 0u64..500, qi in 0usize..4) {
            let inst = encodings::random_treelike_instance(&sig(), 6, 2, seed);
            prop_assume!(inst.fact_count() <= 10 && inst.fact_count() > 0);
            let q = &queries()[qi];
            let probs: Vec<f64> = (0..inst.fact_count()).map(|i| [0.5, 0.25, 0.75][i % 3]).collect();
            let valuation = ProbabilityValuation::from_f64(&inst, &probs);
            let evaluator = ProbabilityEvaluator::new(&inst, &valuation);
            let brute = evaluator.query_probability_bruteforce(q);
            prop_assert_eq!(evaluator.query_probability(q).unwrap(), brute.clone());
            prop_assert_eq!(evaluator.query_probability_via_ddnnf(q).unwrap(), brute);
            prop_assert_eq!(
                evaluator.model_count(q).unwrap().to_u64(),
                evaluator.model_count_bruteforce(q).to_u64()
            );
        }
    }
}
