//! Match counting (Definition 5.6 and Theorem 5.7's tractable side).
//!
//! The counting problem for a query `q(X)` with free second-order variables
//! asks how many assignments of domain subsets to `X` satisfy the query. We
//! reproduce the tractable side of Theorem 5.7 through the standard
//! second-order-variables-as-facts encoding: each free set variable `X_i` is
//! materialized as a fresh unary relation `SelX_i` whose facts (one per
//! domain element) are the Boolean variables; the ordinary facts of the
//! instance are kept certain. Counting assignments of `X` then *is* model
//! counting of the lineage of the rewritten query over the selection facts,
//! which is linear on the compiled OBDD / d-DNNF. The brute-force oracle of
//! `treelineage-query`'s MSO module cross-checks the results in the tests.

use crate::lineage::{LineageBuilder, LineageError};
use treelineage_instance::{Element, FactId, Instance, RelationId, Signature};
use treelineage_num::BigUint;
use treelineage_query::UnionOfConjunctiveQueries;

/// Counts assignments of the "selection" unary relations that satisfy a UCQ≠.
///
/// The query is expressed over an extended signature containing, besides the
/// instance's relations, one unary *selection* relation per free second-order
/// variable. [`MatchCounter::count`] returns the number of interpretations of
/// the selection relations (as subsets of the instance's active domain) under
/// which the query holds on the instance.
pub struct MatchCounter<'a> {
    query: &'a UnionOfConjunctiveQueries,
    instance: &'a Instance,
    selection_relations: Vec<&'a str>,
}

impl<'a> MatchCounter<'a> {
    /// Creates a counter for `query` over `instance`; `selection_relations`
    /// names the unary relations of the query's signature that play the role
    /// of the free second-order variables.
    pub fn new(
        query: &'a UnionOfConjunctiveQueries,
        instance: &'a Instance,
        selection_relations: Vec<&'a str>,
    ) -> Self {
        MatchCounter {
            query,
            instance,
            selection_relations,
        }
    }

    /// Builds the extended instance: the original facts plus one fact of each
    /// selection relation per domain element. Returns the instance together
    /// with the fact ids of the original (certain) facts and of the selection
    /// (counted) facts.
    fn extended_instance(&self) -> Result<(Instance, Vec<FactId>, Vec<FactId>), LineageError> {
        let signature: &Signature = self.query.signature();
        // Validate that the selection relations exist and are unary.
        let mut selection_ids: Vec<RelationId> = Vec::new();
        for name in &self.selection_relations {
            let id = signature
                .relation_by_name(name)
                .ok_or(LineageError::SignatureMismatch)?;
            if signature.arity(id) != 1 {
                return Err(LineageError::SignatureMismatch);
            }
            selection_ids.push(id);
        }
        let mut extended = Instance::new(signature.clone());
        let mut base_facts = Vec::new();
        for (_, fact) in self.instance.facts() {
            // The base instance's relations must exist in the query signature
            // under the same ids; we rebuild facts by relation name.
            let name = self.instance.signature().relation(fact.relation()).name();
            let id = signature
                .relation_by_name(name)
                .ok_or(LineageError::SignatureMismatch)?;
            base_facts.push(extended.add_fact(id, fact.arguments().to_vec()));
        }
        let domain: Vec<Element> = self.instance.domain().into_iter().collect();
        let mut selection_facts = Vec::new();
        for rel in selection_ids {
            for &e in &domain {
                selection_facts.push(extended.add_fact(rel, vec![e]));
            }
        }
        Ok((extended, base_facts, selection_facts))
    }

    /// The number of selection-relation interpretations (subsets of the
    /// active domain) under which the query holds.
    pub fn count(&self) -> Result<BigUint, LineageError> {
        let (extended, base_facts, selection_facts) = self.extended_instance()?;
        let builder = LineageBuilder::new(self.query, &extended)?;
        let (manager, root) = builder.dd();
        // Condition the lineage on all base facts being present: weighted
        // model counting with base facts at 1 and selection facts at 1/2,
        // scaled by 2^{#selection facts}.
        use treelineage_num::Rational;
        let base: std::collections::BTreeSet<usize> = base_facts.iter().map(|f| f.0).collect();
        let p = manager.probability(root, &|v| {
            if base.contains(&v) {
                Rational::one()
            } else {
                Rational::one_half()
            }
        });
        let scaled = &p * &Rational::from_biguint(BigUint::pow2(selection_facts.len()));
        assert!(scaled.denominator().is_one(), "count must be an integer");
        Ok(scaled.numerator().magnitude().clone())
    }

    /// Brute-force count over all selection interpretations (oracle);
    /// exponential, limited to 20 selection facts.
    pub fn count_bruteforce(&self) -> Result<BigUint, LineageError> {
        let (extended, base_facts, selection_facts) = self.extended_instance()?;
        assert!(
            selection_facts.len() <= 20,
            "brute force limited to 20 selection facts"
        );
        let mut count = 0u64;
        for mask in 0u64..(1u64 << selection_facts.len()) {
            let mut world: std::collections::BTreeSet<FactId> =
                base_facts.iter().copied().collect();
            for (i, &f) in selection_facts.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    world.insert(f);
                }
            }
            if treelineage_query::matching::satisfied_in_world(self.query, &extended, &world) {
                count += 1;
            }
        }
        Ok(BigUint::from_u64(count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_instance::encodings;
    use treelineage_query::parse_query;

    /// Signature with an edge relation and a selection relation.
    fn sel_signature() -> Signature {
        Signature::builder()
            .relation("E", 2)
            .relation("Sel", 1)
            .build()
    }

    #[test]
    fn counting_selected_pairs_joined_by_an_edge() {
        // Count subsets X of the domain containing two adjacent selected
        // elements — i.e. X is NOT an independent set of the path. On a path
        // with 4 vertices there are 2^4 = 16 subsets, of which F(6) = 8 are
        // independent sets, so 8 satisfy the query.
        let sig = sel_signature();
        let e = sig.relation_by_name("E").unwrap();
        let graph = treelineage_graph::generators::path_graph(4);
        let inst = encodings::graph_instance(&graph, &sig, e);
        let q = parse_query(&sig, "E(x, y), Sel(x), Sel(y)").unwrap();
        let counter = MatchCounter::new(&q, &inst, vec!["Sel"]);
        let exact = counter.count().unwrap();
        let brute = counter.count_bruteforce().unwrap();
        assert_eq!(exact.to_u64(), brute.to_u64());
        assert_eq!(exact.to_u64(), Some(16 - 8));
    }

    #[test]
    fn counting_on_cycles_matches_bruteforce() {
        let sig = sel_signature();
        let e = sig.relation_by_name("E").unwrap();
        for n in 3..=6usize {
            let graph = treelineage_graph::generators::cycle_graph(n);
            let inst = encodings::graph_instance(&graph, &sig, e);
            let q = parse_query(&sig, "E(x, y), Sel(x), Sel(y)").unwrap();
            let counter = MatchCounter::new(&q, &inst, vec!["Sel"]);
            assert_eq!(
                counter.count().unwrap().to_u64(),
                counter.count_bruteforce().unwrap().to_u64(),
                "n={n}"
            );
        }
    }

    #[test]
    fn counting_independent_sets_via_complement() {
        // #independent sets = 2^n - #subsets with an internal edge; verified
        // against the graph crate's dedicated DP.
        let sig = sel_signature();
        let e = sig.relation_by_name("E").unwrap();
        let graph = treelineage_graph::generators::balanced_binary_tree(7);
        let inst = encodings::graph_instance(&graph, &sig, e);
        let q = parse_query(&sig, "E(x, y), Sel(x), Sel(y)").unwrap();
        let counter = MatchCounter::new(&q, &inst, vec!["Sel"]);
        let bad = counter.count().unwrap().to_u64().unwrap();
        let total = 1u64 << graph.vertex_count();
        let independent = treelineage_graph::counting::count_independent_sets(&graph)
            .to_u64()
            .unwrap();
        assert_eq!(total - bad, independent);
    }

    #[test]
    fn unknown_selection_relation_is_rejected() {
        let sig = sel_signature();
        let e = sig.relation_by_name("E").unwrap();
        let graph = treelineage_graph::generators::path_graph(3);
        let inst = encodings::graph_instance(&graph, &sig, e);
        let q = parse_query(&sig, "E(x, y), Sel(x), Sel(y)").unwrap();
        let counter = MatchCounter::new(&q, &inst, vec!["NoSuch"]);
        assert!(counter.count().is_err());
    }
}
