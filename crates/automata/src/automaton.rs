//! Bottom-up tree automata on full binary trees.
//!
//! The tractability backbone of the paper (via \[2\] and Courcelle's theorem
//! \[13\]) is the ability to run a bottom-up tree automaton compiled from the
//! query over a tree encoding of the instance. This module implements
//! nondeterministic bottom-up tree automata (bNTA), their deterministic
//! restriction (bDTA), the subset-construction determinization used by
//! Theorem 6.11 ("one can always make a tree automaton deterministic \[12\], at
//! the cost of an increased constant factor"), products, complement and
//! emptiness testing.
//!
//! ```
//! use treelineage_automata::{BinaryTree, TreeAutomaton};
//!
//! // States 0 = even, 1 = odd number of 1-leaves; label 2 combines.
//! let mut a = TreeAutomaton::new(2, 3);
//! a.add_leaf_transition(0, 0);
//! a.add_leaf_transition(1, 1);
//! for l in 0..2 {
//!     for r in 0..2 {
//!         a.add_internal_transition(2, l, r, (l + r) % 2);
//!     }
//! }
//! a.add_accepting(1);
//! assert!(a.is_deterministic());
//! assert!(a.accepts(&BinaryTree::comb(&[1, 0], 2)));
//! assert!(!a.accepts(&BinaryTree::comb(&[1, 1], 2)));
//! ```

use crate::tree::{BinaryTree, Label};
use std::collections::{BTreeMap, BTreeSet};

/// A state of a tree automaton (a dense index).
pub type State = usize;

/// Error of [`TreeAutomaton::determinize_with_budget`]: the subset
/// construction needed more than the budgeted number of states. On
/// adversarial automata (many states whose subsets are all reachable) the
/// construction is exponential; the budget turns that into a typed error
/// instead of unbounded time and memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeterminizeError {
    /// The state budget that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for DeterminizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "determinization exceeded the budget of {} subset states",
            self.budget
        )
    }
}

impl std::error::Error for DeterminizeError {}

/// A nondeterministic bottom-up tree automaton over the alphabet
/// `{0, ..., alphabet_size - 1}` on full binary trees.
#[derive(Clone, Debug)]
pub struct TreeAutomaton {
    state_count: usize,
    alphabet_size: usize,
    /// `leaf_transitions[label]` = set of states reachable at a leaf with
    /// that label.
    leaf_transitions: Vec<BTreeSet<State>>,
    /// `internal_transitions[label]` maps `(left_state, right_state)` to the
    /// set of reachable states.
    internal_transitions: Vec<BTreeMap<(State, State), BTreeSet<State>>>,
    accepting: BTreeSet<State>,
}

impl TreeAutomaton {
    /// Creates an automaton with the given number of states and alphabet
    /// size and no transitions.
    pub fn new(state_count: usize, alphabet_size: usize) -> Self {
        TreeAutomaton {
            state_count,
            alphabet_size,
            leaf_transitions: vec![BTreeSet::new(); alphabet_size],
            internal_transitions: vec![BTreeMap::new(); alphabet_size],
            accepting: BTreeSet::new(),
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Alphabet size.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    /// Adds a leaf transition: a leaf labelled `label` may evaluate to
    /// `state`.
    pub fn add_leaf_transition(&mut self, label: Label, state: State) {
        assert!(label < self.alphabet_size && state < self.state_count);
        self.leaf_transitions[label].insert(state);
    }

    /// Adds an internal transition: a node labelled `label` whose children
    /// evaluate to `left` and `right` may evaluate to `state`.
    pub fn add_internal_transition(
        &mut self,
        label: Label,
        left: State,
        right: State,
        state: State,
    ) {
        assert!(label < self.alphabet_size);
        assert!(left < self.state_count && right < self.state_count && state < self.state_count);
        self.internal_transitions[label]
            .entry((left, right))
            .or_default()
            .insert(state);
    }

    /// Marks a state as accepting.
    pub fn add_accepting(&mut self, state: State) {
        assert!(state < self.state_count);
        self.accepting.insert(state);
    }

    /// The accepting states.
    pub fn accepting_states(&self) -> &BTreeSet<State> {
        &self.accepting
    }

    /// The states a leaf with the given label may evaluate to.
    pub fn leaf_states(&self, label: Label) -> &BTreeSet<State> {
        &self.leaf_transitions[label]
    }

    /// The states an internal node with the given label and child states may
    /// evaluate to.
    pub fn internal_states(&self, label: Label, left: State, right: State) -> BTreeSet<State> {
        self.internal_transitions[label]
            .get(&(left, right))
            .cloned()
            .unwrap_or_default()
    }

    /// Returns `true` if the automaton is (bottom-up) deterministic: every
    /// leaf label and every (label, left, right) combination leads to at most
    /// one state.
    pub fn is_deterministic(&self) -> bool {
        self.leaf_transitions.iter().all(|s| s.len() <= 1)
            && self
                .internal_transitions
                .iter()
                .all(|m| m.values().all(|s| s.len() <= 1))
    }

    /// Computes the set of states reachable at every node of the tree
    /// (bottom-up), indexed by node id.
    pub fn reachable_states(&self, tree: &BinaryTree) -> Vec<BTreeSet<State>> {
        let mut states: Vec<BTreeSet<State>> = vec![BTreeSet::new(); tree.node_count()];
        for node in tree.post_order() {
            let label = tree.label(node);
            assert!(label < self.alphabet_size, "label {label} outside alphabet");
            states[node.0] = match tree.children(node) {
                None => self.leaf_transitions[label].clone(),
                Some((l, r)) => {
                    let mut out = BTreeSet::new();
                    for &ls in &states[l.0] {
                        for &rs in &states[r.0] {
                            out.extend(self.internal_states(label, ls, rs));
                        }
                    }
                    out
                }
            };
        }
        states
    }

    /// Returns `true` if the automaton accepts the tree (some run reaches an
    /// accepting state at the root).
    pub fn accepts(&self, tree: &BinaryTree) -> bool {
        let states = self.reachable_states(tree);
        states[tree.root().0]
            .iter()
            .any(|s| self.accepting.contains(s))
    }

    /// The unique run of a deterministic automaton on the tree (the state of
    /// every node), or `None` if some node has no applicable transition.
    /// Panics if the automaton is not deterministic.
    pub fn deterministic_run(&self, tree: &BinaryTree) -> Option<Vec<State>> {
        assert!(self.is_deterministic(), "automaton is not deterministic");
        let mut run = vec![usize::MAX; tree.node_count()];
        for node in tree.post_order() {
            let label = tree.label(node);
            let state = match tree.children(node) {
                None => self.leaf_transitions[label].iter().next().copied(),
                Some((l, r)) => {
                    if run[l.0] == usize::MAX || run[r.0] == usize::MAX {
                        None
                    } else {
                        self.internal_states(label, run[l.0], run[r.0])
                            .iter()
                            .next()
                            .copied()
                    }
                }
            };
            match state {
                Some(s) => run[node.0] = s,
                None => return None,
            }
        }
        Some(run)
    }

    /// Determinizes the automaton by the subset construction (\[12\], as used
    /// in the proof of Theorem 6.11). The resulting automaton is complete and
    /// deterministic and accepts the same trees. States of the result are
    /// subsets of the original states; the mapping back is returned alongside.
    ///
    /// Unbudgeted: on adversarial alphabets the subset construction is
    /// exponential in the state count, so pipelines that accept untrusted
    /// automata should call [`TreeAutomaton::determinize_with_budget`]
    /// instead and handle the typed error.
    pub fn determinize(&self) -> (TreeAutomaton, Vec<BTreeSet<State>>) {
        self.determinize_with_budget(usize::MAX)
            .expect("unbounded budget cannot be exceeded")
    }

    /// [`TreeAutomaton::determinize`] with a cap on the number of subset
    /// states: enumeration stops with a typed [`DeterminizeError`] as soon
    /// as more than `budget` subsets become reachable, instead of silently
    /// consuming exponential time and memory.
    pub fn determinize_with_budget(
        &self,
        budget: usize,
    ) -> Result<(TreeAutomaton, Vec<BTreeSet<State>>), DeterminizeError> {
        // Enumerate reachable subsets bottom-up.
        let mut subsets: Vec<BTreeSet<State>> = Vec::new();
        let mut index: BTreeMap<BTreeSet<State>, usize> = BTreeMap::new();
        let intern = |s: BTreeSet<State>,
                      subsets: &mut Vec<BTreeSet<State>>,
                      index: &mut BTreeMap<BTreeSet<State>, usize>|
         -> Result<usize, DeterminizeError> {
            if let Some(&i) = index.get(&s) {
                return Ok(i);
            }
            if subsets.len() >= budget {
                return Err(DeterminizeError { budget });
            }
            let i = subsets.len();
            index.insert(s.clone(), i);
            subsets.push(s);
            Ok(i)
        };
        // Start with leaf subsets for every label.
        let mut leaf_map: Vec<usize> = Vec::with_capacity(self.alphabet_size);
        for label in 0..self.alphabet_size {
            let subset = self.leaf_transitions[label].clone();
            leaf_map.push(intern(subset, &mut subsets, &mut index)?);
        }
        // Saturate internal transitions.
        let mut internal_map: BTreeMap<(Label, usize, usize), usize> = BTreeMap::new();
        loop {
            let current = subsets.len();
            let snapshot: Vec<BTreeSet<State>> = subsets.clone();
            for label in 0..self.alphabet_size {
                for (li, ls) in snapshot.iter().enumerate() {
                    for (ri, rs) in snapshot.iter().enumerate() {
                        if internal_map.contains_key(&(label, li, ri)) {
                            continue;
                        }
                        let mut out = BTreeSet::new();
                        for &l in ls {
                            for &r in rs {
                                out.extend(self.internal_states(label, l, r));
                            }
                        }
                        let target = intern(out, &mut subsets, &mut index)?;
                        internal_map.insert((label, li, ri), target);
                    }
                }
            }
            if subsets.len() == current
                && internal_map.len() == self.alphabet_size * current * current
            {
                break;
            }
        }
        let mut det = TreeAutomaton::new(subsets.len(), self.alphabet_size);
        for (label, &target) in leaf_map.iter().enumerate() {
            det.add_leaf_transition(label, target);
        }
        for (&(label, l, r), &target) in &internal_map {
            det.add_internal_transition(label, l, r, target);
        }
        for (i, subset) in subsets.iter().enumerate() {
            if subset.iter().any(|s| self.accepting.contains(s)) {
                det.add_accepting(i);
            }
        }
        Ok((det, subsets))
    }

    /// The product automaton accepting the intersection of the two languages.
    pub fn product(&self, other: &TreeAutomaton) -> TreeAutomaton {
        assert_eq!(self.alphabet_size, other.alphabet_size);
        let n = other.state_count;
        let pair = |a: State, b: State| a * n + b;
        let mut out = TreeAutomaton::new(self.state_count * n, self.alphabet_size);
        for label in 0..self.alphabet_size {
            for &a in &self.leaf_transitions[label] {
                for &b in &other.leaf_transitions[label] {
                    out.add_leaf_transition(label, pair(a, b));
                }
            }
            for ((al, ar), atargets) in &self.internal_transitions[label] {
                for ((bl, br), btargets) in &other.internal_transitions[label] {
                    for &at in atargets {
                        for &bt in btargets {
                            out.add_internal_transition(
                                label,
                                pair(*al, *bl),
                                pair(*ar, *br),
                                pair(at, bt),
                            );
                        }
                    }
                }
            }
        }
        for &a in &self.accepting {
            for &b in &other.accepting {
                out.add_accepting(pair(a, b));
            }
        }
        out
    }

    /// The complement automaton (accepts exactly the trees this automaton
    /// rejects), obtained by determinizing and flipping the accepting states.
    pub fn complement(&self) -> TreeAutomaton {
        let (det, subsets) = self.determinize();
        let mut out = det.clone();
        out.accepting = (0..det.state_count)
            .filter(|&i| !subsets[i].iter().any(|s| self.accepting.contains(s)))
            .collect();
        out
    }

    /// Returns `true` if the automaton accepts no tree at all.
    pub fn is_empty(&self) -> bool {
        // Saturate the set of non-empty states (states reachable by some tree).
        let mut nonempty: BTreeSet<State> = BTreeSet::new();
        for label in 0..self.alphabet_size {
            nonempty.extend(self.leaf_transitions[label].iter().copied());
        }
        loop {
            let before = nonempty.len();
            for label in 0..self.alphabet_size {
                for ((l, r), targets) in &self.internal_transitions[label] {
                    if nonempty.contains(l) && nonempty.contains(r) {
                        nonempty.extend(targets.iter().copied());
                    }
                }
            }
            if nonempty.len() == before {
                break;
            }
        }
        !nonempty.iter().any(|s| self.accepting.contains(s))
    }
}

/// The deterministic automaton on alphabet `{0, 1}` (leaf labels) with
/// internal label `internal` that accepts trees whose number of `1`-labelled
/// leaves is odd — the tree-automaton counterpart of the parity lineage of
/// Proposition 7.3, used in tests and by the probabilistic-XML example.
pub fn parity_automaton(internal: Label) -> TreeAutomaton {
    // States: 0 = even, 1 = odd.
    let alphabet = internal + 1;
    let mut a = TreeAutomaton::new(2, alphabet.max(2));
    a.add_leaf_transition(0, 0);
    a.add_leaf_transition(1, 1);
    for l in 0..2 {
        for r in 0..2 {
            a.add_internal_transition(internal, l, r, (l + r) % 2);
        }
    }
    a.add_accepting(1);
    a
}

/// The nondeterministic automaton on leaf alphabet `{0, 1}` that accepts
/// trees containing at least one `1` leaf (written nondeterministically:
/// a `1` leaf may go to either state, so determinization is non-trivial).
pub fn exists_one_automaton(internal: Label) -> TreeAutomaton {
    // States: 0 = "not yet seen", 1 = "seen a 1".
    let alphabet = internal + 1;
    let mut a = TreeAutomaton::new(2, alphabet.max(2));
    a.add_leaf_transition(0, 0);
    a.add_leaf_transition(1, 1);
    a.add_leaf_transition(1, 0); // nondeterministic: may "ignore" the 1
    for l in 0..2 {
        for r in 0..2 {
            let target = if l == 1 || r == 1 { 1 } else { 0 };
            a.add_internal_transition(internal, l, r, target);
        }
    }
    a.add_accepting(1);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BinaryTree;

    fn leaf_word_tree(bits: &[Label]) -> BinaryTree {
        BinaryTree::comb(bits, 2)
    }

    #[test]
    fn parity_automaton_accepts_odd_trees() {
        let a = parity_automaton(2);
        assert!(a.is_deterministic());
        for bits in [vec![1], vec![0, 1, 0], vec![1, 1, 1], vec![0, 0, 1, 1, 1]] {
            let tree = leaf_word_tree(&bits);
            let ones = bits.iter().filter(|&&b| b == 1).count();
            assert_eq!(a.accepts(&tree), ones % 2 == 1, "bits {bits:?}");
        }
    }

    #[test]
    fn deterministic_run_assigns_states() {
        let a = parity_automaton(2);
        let tree = leaf_word_tree(&[1, 0, 1]);
        let run = a.deterministic_run(&tree).unwrap();
        assert_eq!(run[tree.root().0], 0); // two ones -> even
    }

    #[test]
    fn nondeterministic_automaton_and_determinization() {
        let a = exists_one_automaton(2);
        assert!(!a.is_deterministic());
        let (det, _) = a.determinize();
        assert!(det.is_deterministic());
        for bits in [vec![0, 0, 0], vec![0, 1, 0], vec![1], vec![0]] {
            let tree = leaf_word_tree(&bits);
            let expected = bits.contains(&1);
            assert_eq!(a.accepts(&tree), expected, "NTA on {bits:?}");
            assert_eq!(det.accepts(&tree), expected, "DTA on {bits:?}");
        }
    }

    #[test]
    fn product_automaton_intersects_languages() {
        // Trees with an odd number of ones AND at least one one = odd number
        // of ones (non-zero). The product should agree with the conjunction.
        let parity = parity_automaton(2);
        let exists = exists_one_automaton(2);
        let product = parity.product(&exists);
        for bits in [vec![0, 0], vec![1, 0], vec![1, 1], vec![1, 1, 1]] {
            let tree = leaf_word_tree(&bits);
            let expected = parity.accepts(&tree) && exists.accepts(&tree);
            assert_eq!(product.accepts(&tree), expected, "{bits:?}");
        }
    }

    #[test]
    fn complement_automaton() {
        let parity = parity_automaton(2);
        let complement = parity.complement();
        for bits in [vec![0], vec![1], vec![1, 1], vec![1, 0, 1, 1]] {
            let tree = leaf_word_tree(&bits);
            assert_eq!(complement.accepts(&tree), !parity.accepts(&tree));
        }
    }

    #[test]
    fn determinize_budget_guards_subset_blowup() {
        // Adversarial automaton: label 0 unions child states, so every
        // nonempty subset of the 12 states is reachable (2^12 - 1 subsets).
        let n = 12;
        let mut a = TreeAutomaton::new(n, n);
        for i in 0..n {
            a.add_leaf_transition(i, i);
        }
        for l in 0..n {
            for r in 0..n {
                a.add_internal_transition(0, l, r, l);
                a.add_internal_transition(0, l, r, r);
            }
        }
        a.add_accepting(0);
        assert_eq!(
            a.determinize_with_budget(64).unwrap_err(),
            DeterminizeError { budget: 64 }
        );
        // A sufficient budget succeeds and matches the unbudgeted result.
        let nta = exists_one_automaton(2);
        let (budgeted, subsets) = nta.determinize_with_budget(1024).unwrap();
        let (unbudgeted, expected_subsets) = nta.determinize();
        assert!(budgeted.is_deterministic());
        assert_eq!(subsets, expected_subsets);
        assert_eq!(budgeted.state_count(), unbudgeted.state_count());
    }

    #[test]
    fn emptiness() {
        let parity = parity_automaton(2);
        assert!(!parity.is_empty());
        // An automaton with no accepting state is empty.
        let mut empty = parity_automaton(2);
        empty.accepting.clear();
        assert!(empty.is_empty());
        // Intersection of a language and its complement is empty.
        let product = parity.product(&parity.complement());
        assert!(product.is_empty());
    }
}
