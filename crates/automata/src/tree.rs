//! Labelled full binary trees (`Γ-trees`).
//!
//! The constructions of \[2\] (recalled in Section 3 and used by Theorems 6.3
//! and 6.11) run bottom-up tree automata over tree encodings of treelike
//! instances, and over probabilistic XML documents (the use case cited in the
//! introduction). Both are full binary trees whose nodes carry labels from a
//! finite alphabet; this module provides the tree type, traversals, and the
//! *uncertain tree* variant where some nodes carry two alternative labels
//! selected by a Boolean event (the tuple-independent analogue for trees).

use std::fmt;

/// Identifier of a node in a [`BinaryTree`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// A label of the finite alphabet `Γ = {0, ..., alphabet_size - 1}`.
pub type Label = usize;

/// A node of a full binary tree: either a leaf or an internal node with
/// exactly two children.
#[derive(Clone, Debug, PartialEq, Eq)]
enum NodeKind {
    Leaf,
    Internal { left: NodeId, right: NodeId },
}

/// A full binary tree with labelled nodes.
#[derive(Clone, Debug)]
pub struct BinaryTree {
    labels: Vec<Label>,
    kinds: Vec<NodeKind>,
    root: Option<NodeId>,
}

impl BinaryTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BinaryTree {
            labels: Vec::new(),
            kinds: Vec::new(),
            root: None,
        }
    }

    /// Adds a leaf node with the given label and returns its id.
    pub fn leaf(&mut self, label: Label) -> NodeId {
        self.labels.push(label);
        self.kinds.push(NodeKind::Leaf);
        NodeId(self.labels.len() - 1)
    }

    /// Adds an internal node with the given label and children.
    pub fn internal(&mut self, label: Label, left: NodeId, right: NodeId) -> NodeId {
        assert!(left.0 < self.labels.len() && right.0 < self.labels.len());
        self.labels.push(label);
        self.kinds.push(NodeKind::Internal { left, right });
        NodeId(self.labels.len() - 1)
    }

    /// Designates the root node.
    pub fn set_root(&mut self, root: NodeId) {
        assert!(root.0 < self.labels.len());
        self.root = Some(root);
    }

    /// The root node. Panics if not set.
    pub fn root(&self) -> NodeId {
        self.root.expect("tree root not set")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// The label of a node.
    pub fn label(&self, node: NodeId) -> Label {
        self.labels[node.0]
    }

    /// Overrides the label of a node.
    pub fn set_label(&mut self, node: NodeId, label: Label) {
        self.labels[node.0] = label;
    }

    /// The children of a node (`None` for leaves).
    pub fn children(&self, node: NodeId) -> Option<(NodeId, NodeId)> {
        match self.kinds[node.0] {
            NodeKind::Leaf => None,
            NodeKind::Internal { left, right } => Some((left, right)),
        }
    }

    /// Returns `true` if the node is a leaf.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        matches!(self.kinds[node.0], NodeKind::Leaf)
    }

    /// Nodes in post-order (children before parents), starting from the root.
    pub fn post_order(&self) -> Vec<NodeId> {
        self.post_order_from(self.root())
    }

    /// Nodes of the subtree rooted at `from`, in post-order. Because a
    /// subtree's nodes form a contiguous segment of every post-order that
    /// contains them, this is the traversal the parallel compilation engine
    /// uses to hand disjoint subtrees to worker threads while keeping the
    /// merged output identical to a single root-to-leaves pass.
    pub fn post_order_from(&self, from: NodeId) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut stack = vec![(from, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
                continue;
            }
            stack.push((node, true));
            if let Some((l, r)) = self.children(node) {
                stack.push((r, false));
                stack.push((l, false));
            }
        }
        order
    }

    /// The height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        let mut heights = vec![0usize; self.node_count()];
        for node in self.post_order() {
            heights[node.0] = match self.children(node) {
                None => 1,
                Some((l, r)) => 1 + heights[l.0].max(heights[r.0]),
            };
        }
        heights[self.root().0]
    }

    /// The maximum label used plus one (a lower bound on the alphabet size
    /// needed by an automaton running on this tree).
    pub fn alphabet_size(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Builds a left-leaning "comb" tree from a sequence of leaf labels and an
    /// internal label: convenient for encoding words/paths as binary trees.
    pub fn comb(leaf_labels: &[Label], internal_label: Label) -> Self {
        assert!(!leaf_labels.is_empty());
        let mut tree = BinaryTree::new();
        let mut acc = tree.leaf(leaf_labels[0]);
        for &label in &leaf_labels[1..] {
            let leaf = tree.leaf(label);
            acc = tree.internal(internal_label, acc, leaf);
        }
        tree.set_root(acc);
        tree
    }
}

impl Default for BinaryTree {
    fn default() -> Self {
        BinaryTree::new()
    }
}

impl fmt::Display for BinaryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(tree: &BinaryTree, node: NodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match tree.children(node) {
                None => write!(f, "{}", tree.label(node)),
                Some((l, r)) => {
                    write!(f, "{}(", tree.label(node))?;
                    rec(tree, l, f)?;
                    write!(f, ",")?;
                    rec(tree, r, f)?;
                    write!(f, ")")
                }
            }
        }
        if self.root.is_some() {
            rec(self, self.root(), f)
        } else {
            write!(f, "<empty>")
        }
    }
}

/// An uncertain labelled tree: every node carries either a fixed label or a
/// Boolean *event* choosing between two labels. This is the "uncertain tree"
/// of \[2\]'s Proposition 3.1 (and the data model of probabilistic XML without
/// data values, as cited in the introduction): each event is an independent
/// Boolean variable, and a valuation of the events yields an ordinary
/// [`BinaryTree`].
#[derive(Clone, Debug)]
pub struct UncertainTree {
    /// The underlying tree structure; node labels are interpreted through
    /// `annotations`.
    tree: BinaryTree,
    /// For each node, how its label is determined.
    annotations: Vec<NodeAnnotation>,
}

/// How an uncertain tree node's label is determined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeAnnotation {
    /// The node always carries the structural label.
    Fixed,
    /// The node carries `if_true` when the event (Boolean variable) is true
    /// and `if_false` otherwise. The event id doubles as the variable id of
    /// the provenance circuit.
    Event {
        /// The Boolean variable controlling the node.
        event: usize,
        /// Label when the event is true.
        if_true: Label,
        /// Label when the event is false.
        if_false: Label,
    },
}

impl UncertainTree {
    /// Wraps a tree with all nodes fixed.
    pub fn certain(tree: BinaryTree) -> Self {
        let annotations = vec![NodeAnnotation::Fixed; tree.node_count()];
        UncertainTree { tree, annotations }
    }

    /// Marks a node as controlled by an event.
    pub fn set_event(&mut self, node: NodeId, event: usize, if_true: Label, if_false: Label) {
        self.annotations[node.0] = NodeAnnotation::Event {
            event,
            if_true,
            if_false,
        };
    }

    /// The underlying structural tree.
    pub fn tree(&self) -> &BinaryTree {
        &self.tree
    }

    /// The annotation of a node.
    pub fn annotation(&self, node: NodeId) -> NodeAnnotation {
        self.annotations[node.0]
    }

    /// All events (Boolean variables) used in the tree.
    pub fn events(&self) -> Vec<usize> {
        let mut events: Vec<usize> = self
            .annotations
            .iter()
            .filter_map(|a| match a {
                NodeAnnotation::Event { event, .. } => Some(*event),
                NodeAnnotation::Fixed => None,
            })
            .collect();
        events.sort_unstable();
        events.dedup();
        events
    }

    /// The concrete tree obtained under a valuation of the events.
    pub fn instantiate(&self, valuation: &dyn Fn(usize) -> bool) -> BinaryTree {
        let mut tree = self.tree.clone();
        for node in 0..tree.node_count() {
            if let NodeAnnotation::Event {
                event,
                if_true,
                if_false,
            } = self.annotations[node]
            {
                let label = if valuation(event) { if_true } else { if_false };
                tree.set_label(NodeId(node), label);
            }
        }
        tree
    }

    /// The effective label of a node under a valuation.
    pub fn label_under(&self, node: NodeId, valuation: &dyn Fn(usize) -> bool) -> Label {
        match self.annotations[node.0] {
            NodeAnnotation::Fixed => self.tree.label(node),
            NodeAnnotation::Event {
                event,
                if_true,
                if_false,
            } => {
                if valuation(event) {
                    if_true
                } else {
                    if_false
                }
            }
        }
    }

    /// The alphabet size needed to cover all labels (fixed and alternative).
    pub fn alphabet_size(&self) -> usize {
        let mut max = self.tree.alphabet_size();
        for a in &self.annotations {
            if let NodeAnnotation::Event {
                if_true, if_false, ..
            } = a
            {
                max = max.max(if_true + 1).max(if_false + 1);
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> BinaryTree {
        // 2(0, 1(0, 0))
        let mut t = BinaryTree::new();
        let a = t.leaf(0);
        let b = t.leaf(0);
        let c = t.leaf(0);
        let inner = t.internal(1, b, c);
        let root = t.internal(2, a, inner);
        t.set_root(root);
        t
    }

    #[test]
    fn construction_and_traversal() {
        let t = small_tree();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.height(), 3);
        assert_eq!(t.alphabet_size(), 3);
        let order = t.post_order();
        assert_eq!(order.len(), 5);
        assert_eq!(*order.last().unwrap(), t.root());
        assert!(t.is_leaf(NodeId(0)));
        assert!(!t.is_leaf(t.root()));
        assert_eq!(t.to_string(), "2(0,1(0,0))");
    }

    #[test]
    fn comb_tree() {
        let t = BinaryTree::comb(&[1, 2, 3], 9);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.to_string(), "9(9(1,2),3)");
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn uncertain_tree_instantiation() {
        let mut u = UncertainTree::certain(small_tree());
        u.set_event(NodeId(0), 7, 5, 0);
        assert_eq!(u.events(), vec![7]);
        let with = u.instantiate(&|e| e == 7);
        let without = u.instantiate(&|_| false);
        assert_eq!(with.label(NodeId(0)), 5);
        assert_eq!(without.label(NodeId(0)), 0);
        assert_eq!(u.alphabet_size(), 6);
        assert_eq!(u.label_under(NodeId(0), &|_| true), 5);
        assert_eq!(u.label_under(NodeId(4), &|_| true), 2);
    }

    #[test]
    #[should_panic]
    fn internal_node_requires_existing_children() {
        let mut t = BinaryTree::new();
        let a = t.leaf(0);
        let _ = t.internal(1, a, NodeId(5));
    }
}
