//! Provenance circuits of tree automata on uncertain trees
//! (Proposition 3.1 of \[2\]/\[3\], the engine behind Theorems 6.3 and 6.11).
//!
//! Given a bottom-up tree automaton `A` and an uncertain tree `E` (each node
//! carrying either a fixed label or a Boolean event choosing between two
//! labels), the *provenance circuit* is a Boolean circuit over the events
//! that is true under a valuation `ν` exactly when `A` accepts the concrete
//! tree `ν(E)`. The construction is linear in `|A| · |E|`: one gate per
//! (node, state) pair plus bookkeeping.
//!
//! When `A` is deterministic and every node is controlled by its own event,
//! the construction yields a d-DNNF (this is the content of Theorem 6.11's
//! proof, reproduced by `provenance_circuit` + the d-DNNF checks in the
//! tests). Probability evaluation of the uncertain tree (e.g. probabilistic
//! XML, cited in the paper's introduction) is then linear.

use crate::automaton::TreeAutomaton;
use crate::tree::{NodeAnnotation, UncertainTree};
use std::collections::BTreeSet;
use treelineage_circuit::{Circuit, GateId};

/// Builds the provenance circuit of `automaton` on `tree`: a circuit over the
/// tree's events that evaluates to true under a valuation iff the automaton
/// accepts the instantiated tree.
///
/// If the automaton is deterministic and events control at most one node
/// each, the resulting circuit satisfies the d-DNNF conditions
/// (Definition 6.10); this is checked by the tests, not enforced here.
#[allow(clippy::needless_range_loop)] // `q` is a state id, not just an index
pub fn provenance_circuit(automaton: &TreeAutomaton, tree: &UncertainTree) -> Circuit {
    let mut circuit = Circuit::new();
    let false_gate = circuit.constant(false);
    let true_gate = circuit.constant(true);
    let states = automaton.state_count();
    // gate[node][q] = gate asserting the existence of a run assigning q to
    // the node's subtree.
    let node_count = tree.tree().node_count();
    let mut gates: Vec<Vec<GateId>> = vec![vec![false_gate; states]; node_count];

    for node in tree.tree().post_order() {
        match tree.tree().children(node) {
            None => {
                for q in 0..states {
                    gates[node.0][q] = match tree.annotation(node) {
                        NodeAnnotation::Fixed => {
                            if automaton.leaf_states(tree.tree().label(node)).contains(&q) {
                                true_gate
                            } else {
                                false_gate
                            }
                        }
                        NodeAnnotation::Event {
                            event,
                            if_true,
                            if_false,
                        } => {
                            let in_true = automaton.leaf_states(if_true).contains(&q);
                            let in_false = automaton.leaf_states(if_false).contains(&q);
                            match (in_true, in_false) {
                                (true, true) => true_gate,
                                (false, false) => false_gate,
                                (true, false) => circuit.var(event),
                                (false, true) => {
                                    let v = circuit.var(event);
                                    circuit.not(v)
                                }
                            }
                        }
                    };
                }
            }
            Some((left, right)) => {
                // The label alternatives for this node, each guarded by a
                // condition gate (constant true for fixed labels, the event
                // literal otherwise).
                let alternatives: Vec<(usize, Option<GateId>)> = match tree.annotation(node) {
                    NodeAnnotation::Fixed => vec![(tree.tree().label(node), None)],
                    NodeAnnotation::Event {
                        event,
                        if_true,
                        if_false,
                    } => {
                        let v = circuit.var(event);
                        let not_v = circuit.not(v);
                        vec![(if_true, Some(v)), (if_false, Some(not_v))]
                    }
                };
                // Iterate only over *live* (non-false) child states, pushing
                // each discovered run into its target state's disjunct list
                // (same per-state discovery order as the dense triple loop,
                // at |live_l| · |live_r| · |alternatives| cost per node).
                let live_left: Vec<usize> = (0..states)
                    .filter(|&q| gates[left.0][q] != false_gate)
                    .collect();
                let live_right: Vec<usize> = (0..states)
                    .filter(|&q| gates[right.0][q] != false_gate)
                    .collect();
                let mut disjuncts: Vec<Vec<GateId>> = vec![Vec::new(); states];
                for &(label, guard) in &alternatives {
                    for &ql in &live_left {
                        for &qr in &live_right {
                            for &q in &automaton.internal_states(label, ql, qr) {
                                let mut conj = vec![gates[left.0][ql], gates[right.0][qr]];
                                if let Some(g) = guard {
                                    conj.push(g);
                                }
                                let conj: Vec<GateId> =
                                    conj.into_iter().filter(|&g| g != true_gate).collect();
                                let gate = match conj.len() {
                                    0 => true_gate,
                                    1 => conj[0],
                                    _ => circuit.and(conj),
                                };
                                disjuncts[q].push(gate);
                            }
                        }
                    }
                }
                for (q, disjuncts) in disjuncts.into_iter().enumerate() {
                    gates[node.0][q] = match disjuncts.len() {
                        0 => false_gate,
                        1 => disjuncts[0],
                        _ => circuit.or(disjuncts),
                    };
                }
            }
        }
    }

    let root = tree.tree().root();
    let accepting: Vec<GateId> = automaton
        .accepting_states()
        .iter()
        .map(|&q| gates[root.0][q])
        .filter(|&g| g != false_gate)
        .collect();
    let output = match accepting.len() {
        0 => false_gate,
        1 => accepting[0],
        _ => circuit.or(accepting),
    };
    circuit.set_output(output);
    circuit
}

/// Brute-force acceptance probability of an uncertain tree under independent
/// event probabilities; oracle for tests (at most 20 events).
pub fn acceptance_probability_bruteforce(
    automaton: &TreeAutomaton,
    tree: &UncertainTree,
    prob: &dyn Fn(usize) -> treelineage_num::Rational,
) -> treelineage_num::Rational {
    use treelineage_num::Rational;
    let events = tree.events();
    assert!(events.len() <= 20, "brute-force limited to 20 events");
    let mut total = Rational::zero();
    for mask in 0u64..(1u64 << events.len()) {
        let true_events: BTreeSet<usize> = events
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        let concrete = tree.instantiate(&|e| true_events.contains(&e));
        if !automaton.accepts(&concrete) {
            continue;
        }
        let mut weight = Rational::one();
        for &e in &events {
            let p = prob(e);
            if true_events.contains(&e) {
                weight *= &p;
            } else {
                weight *= &p.complement();
            }
        }
        total += &weight;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{exists_one_automaton, parity_automaton};
    use crate::tree::{BinaryTree, UncertainTree};
    use std::collections::BTreeSet;
    use treelineage_circuit::Dnnf;
    use treelineage_num::Rational;

    /// An uncertain comb tree with `n` leaves, each controlled by its own
    /// event i (label 1 if present, 0 if absent). This is exactly the lineage
    /// setting of the parity query on a path of uncertain labels.
    fn uncertain_leaves(n: usize) -> UncertainTree {
        let tree = BinaryTree::comb(&vec![0; n], 2);
        let mut u = UncertainTree::certain(tree);
        let mut leaf_index = 0;
        for node in 0..u.tree().node_count() {
            if u.tree().is_leaf(crate::tree::NodeId(node)) {
                u.set_event(crate::tree::NodeId(node), leaf_index, 1, 0);
                leaf_index += 1;
            }
        }
        assert_eq!(leaf_index, n);
        u
    }

    fn check_provenance(automaton: &TreeAutomaton, tree: &UncertainTree) {
        let circuit = provenance_circuit(automaton, tree);
        let events = tree.events();
        assert!(events.len() <= 16);
        for mask in 0u64..(1u64 << events.len()) {
            let true_events: BTreeSet<usize> = events
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let concrete = tree.instantiate(&|e| true_events.contains(&e));
            assert_eq!(
                circuit.evaluate_set(&true_events),
                automaton.accepts(&concrete),
                "mask {mask}"
            );
        }
    }

    #[test]
    fn provenance_of_parity_automaton_is_correct() {
        let automaton = parity_automaton(2);
        for n in 1..=6 {
            check_provenance(&automaton, &uncertain_leaves(n));
        }
    }

    #[test]
    fn provenance_of_nondeterministic_automaton_is_correct() {
        let automaton = exists_one_automaton(2);
        for n in 1..=5 {
            check_provenance(&automaton, &uncertain_leaves(n));
        }
    }

    #[test]
    fn deterministic_automaton_yields_ddnnf() {
        // Theorem 6.11's mechanism: with a deterministic automaton, the
        // provenance circuit is a d-DNNF.
        let automaton = parity_automaton(2);
        for n in 1..=6 {
            let circuit = provenance_circuit(&automaton, &uncertain_leaves(n));
            assert!(
                Dnnf::verify(circuit).is_ok(),
                "parity provenance for n={n} should be a d-DNNF"
            );
        }
    }

    #[test]
    fn determinized_automaton_yields_ddnnf_where_nta_may_not() {
        let nta = exists_one_automaton(2);
        let (dta, _) = nta.determinize();
        for n in 2..=5 {
            let tree = uncertain_leaves(n);
            let from_dta = provenance_circuit(&dta, &tree);
            assert!(
                Dnnf::verify(from_dta).is_ok(),
                "determinized provenance for n={n} should be a d-DNNF"
            );
            // The NTA circuit computes the same function (even if it is not
            // necessarily deterministic as a circuit).
            let from_nta = provenance_circuit(&nta, &tree);
            assert!(from_nta.equivalent_to(&provenance_circuit(&dta, &tree)));
        }
    }

    #[test]
    fn provenance_circuit_size_is_linear_in_tree_size() {
        let automaton = parity_automaton(2);
        let sizes: Vec<usize> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| provenance_circuit(&automaton, &uncertain_leaves(n)).size())
            .collect();
        // Doubling the tree size should roughly double the circuit size
        // (allow generous slack; the point is that growth is linear, not
        // quadratic).
        for w in sizes.windows(2) {
            assert!(w[1] <= 3 * w[0], "sizes {sizes:?}");
        }
    }

    #[test]
    fn probability_via_ddnnf_matches_bruteforce() {
        let automaton = parity_automaton(2);
        let tree = uncertain_leaves(5);
        let circuit = provenance_circuit(&automaton, &tree);
        let dnnf = Dnnf::verify(circuit).unwrap();
        let prob = |e: usize| Rational::from_ratio_u64(1, e as u64 + 2);
        let expected = acceptance_probability_bruteforce(&automaton, &tree, &prob);
        assert_eq!(dnnf.probability(&prob), expected);
    }

    #[test]
    fn fixed_nodes_do_not_contribute_variables() {
        let automaton = parity_automaton(2);
        let mut u = uncertain_leaves(4);
        // Fix the first leaf to label 1 (always present).
        let first_leaf = (0..u.tree().node_count())
            .map(crate::tree::NodeId)
            .find(|&n| u.tree().is_leaf(n))
            .unwrap();
        u.set_event(first_leaf, 0, 1, 1);
        let circuit = provenance_circuit(&automaton, &u);
        // Event 0 selects between identical labels; a smarter builder could
        // drop it, but correctness is what matters: the function must not
        // depend on it.
        let mut with = BTreeSet::new();
        with.insert(0usize);
        with.insert(1usize);
        let mut without = BTreeSet::new();
        without.insert(1usize);
        assert_eq!(circuit.evaluate_set(&with), circuit.evaluate_set(&without));
    }
}
