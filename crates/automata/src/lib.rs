//! Tree automata and automaton provenance for the `treelineage` workspace.
//!
//! The paper's tractability results go through the machinery of \[2\]: compile
//! the query into a bottom-up tree automaton, run it over a tree encoding of
//! the treelike instance, and extract a provenance circuit of the run. This
//! crate implements the automaton side of that pipeline from scratch:
//!
//! * [`BinaryTree`] / [`UncertainTree`] — labelled full binary trees and
//!   their uncertain variant (one Boolean event per node), the data model of
//!   probabilistic XML without data values cited in the introduction;
//! * [`TreeAutomaton`] — nondeterministic bottom-up tree automata with
//!   determinization (\[12\]), product, complement and emptiness;
//! * [`provenance_circuit`] — the linear-time provenance circuit of an
//!   automaton on an uncertain tree (Proposition 3.1 of \[2\]), which is a
//!   d-DNNF when the automaton is deterministic (the key step of
//!   Theorem 6.11);
//! * [`compile_structured_dnnf`] — the constructive form of that theorem: a
//!   *certified*, smooth d-SDNNF with a vtree witness read off the tree,
//!   supporting one-pass probability, weighted model counting and model
//!   counting;
//! * [`strategies`] — reusable property-testing generators for random
//!   uncertain trees and deterministic automata, shared with the
//!   workspace-level cross-backend differential suite.
//!
//! The instance-side pipeline (tree encodings of bounded-treewidth
//! relational instances and query→automaton compilation) lives in
//! `treelineage-encoding`, the lineage API surfacing both in the core
//! `treelineage` crate, and `treelineage-engine` compiles the same
//! provenance over disjoint subtrees on worker threads (bit-identically,
//! via [`BinaryTree::post_order_from`] subtree segments and
//! [`StructuredDnnf::from_trusted_parts`]); see DESIGN.md §2 and
//! §Concurrency.
//!
//! The provenance route in one example — an uncertain tree whose three
//! leaves are each controlled by a Boolean event, against the
//! odd-number-of-1-leaves automaton:
//!
//! ```
//! use treelineage_automata::{
//!     compile_structured_dnnf, parity_automaton, BinaryTree, NodeId, UncertainTree,
//! };
//! use treelineage_num::Rational;
//!
//! let mut uncertain = UncertainTree::certain(BinaryTree::comb(&[0, 0, 0], 2));
//! for (event, leaf) in [(0usize, NodeId(0)), (1, NodeId(1)), (2, NodeId(3))] {
//!     uncertain.set_event(leaf, event, 1, 0); // event true ⇒ the leaf reads 1
//! }
//! let automaton = parity_automaton(2);
//! let lineage = compile_structured_dnnf(&automaton, &uncertain).unwrap();
//! // 4 of the 8 event valuations have an odd number of 1-leaves...
//! assert_eq!(lineage.model_count().to_u64(), Some(4));
//! // ...so the acceptance probability under independent fair coins is 1/2.
//! assert_eq!(
//!     lineage.probability(&|_| Rational::one_half()),
//!     Rational::one_half(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod provenance;
pub mod strategies;
mod structured;
mod tree;

pub use automaton::{
    exists_one_automaton, parity_automaton, DeterminizeError, State, TreeAutomaton,
};
pub use provenance::{acceptance_probability_bruteforce, provenance_circuit};
pub use structured::{
    compile_structured_dnnf, compile_structured_dnnf_traced, StructuredDnnf, StructuredDnnfError,
};
pub use tree::{BinaryTree, Label, NodeAnnotation, NodeId, UncertainTree};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Random uncertain comb trees of random size with 0/1 leaves each
    /// controlled by a distinct event.
    fn arbitrary_uncertain_comb() -> impl Strategy<Value = UncertainTree> {
        (1usize..8).prop_map(|n| {
            let tree = BinaryTree::comb(&vec![0; n], 2);
            let mut u = UncertainTree::certain(tree);
            let mut event = 0;
            for node in 0..u.tree().node_count() {
                if u.tree().is_leaf(NodeId(node)) {
                    u.set_event(NodeId(node), event, 1, 0);
                    event += 1;
                }
            }
            u
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn provenance_circuit_matches_acceptance(u in arbitrary_uncertain_comb(), which in 0u8..2) {
            let automaton = if which == 0 {
                parity_automaton(2)
            } else {
                exists_one_automaton(2)
            };
            let circuit = provenance_circuit(&automaton, &u);
            let events = u.events();
            for mask in 0u64..(1u64 << events.len()) {
                let true_events: BTreeSet<usize> = events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &e)| e)
                    .collect();
                let concrete = u.instantiate(&|e| true_events.contains(&e));
                prop_assert_eq!(circuit.evaluate_set(&true_events), automaton.accepts(&concrete));
            }
        }

        #[test]
        fn determinization_preserves_language_on_random_trees(u in arbitrary_uncertain_comb()) {
            let nta = exists_one_automaton(2);
            let (dta, _) = nta.determinize();
            let events = u.events();
            for mask in 0u64..(1u64 << events.len()) {
                let true_events: BTreeSet<usize> = events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &e)| e)
                    .collect();
                let concrete = u.instantiate(&|e| true_events.contains(&e));
                prop_assert_eq!(nta.accepts(&concrete), dta.accepts(&concrete));
            }
        }

        #[test]
        fn deterministic_provenance_probability_is_linear_time_consistent(u in arbitrary_uncertain_comb()) {
            use treelineage_circuit::Dnnf;
            use treelineage_num::Rational;
            let automaton = parity_automaton(2);
            let circuit = provenance_circuit(&automaton, &u);
            let dnnf = Dnnf::from_trusted_circuit(circuit).unwrap();
            let prob = |e: usize| Rational::from_ratio_u64(1, e as u64 + 2);
            let expected = acceptance_probability_bruteforce(&automaton, &u, &prob);
            prop_assert_eq!(dnnf.probability(&prob), expected);
        }
    }
}
