//! Direct compilation of automaton provenance into certified, smooth
//! structured d-DNNFs (d-SDNNFs).
//!
//! [`provenance_circuit`](crate::provenance_circuit) emits a raw circuit and
//! leaves the d-DNNF property to after-the-fact verification. This module is
//! the paper's Theorem 6.11 made constructive: for a *deterministic*
//! bottom-up automaton on an uncertain tree whose events each control a
//! single node, [`compile_structured_dnnf`] emits a circuit that is
//!
//! * **decomposable** by construction — every ∧ splits the event of the
//!   current node from the (disjoint) event scopes of the two subtrees;
//! * **deterministic** by construction — every ∨ ranges over mutually
//!   exclusive cases (the event literal picks the label; the unique run of
//!   the deterministic automaton picks the child states);
//! * **smooth** by construction — every gate either is the constant false or
//!   mentions *exactly* the events of its subtree, so all ∨-children share
//!   one scope and model counting is a single integer pass (no padding
//!   needed afterwards);
//! * **structured** — witnessed by a [`Vtree`] read off the input tree
//!   (event of a node against the scopes of its two children), which
//!   [`StructuredDnnf::vtree`] exposes and the test suite certifies with
//!   [`Vtree::respects`].
//!
//! Probability, weighted model counting and model counting on the result are
//! all linear in its size — the "linear-time probability without OBDD
//! blowup" extension that motivates the d-SDNNF backend.

use crate::automaton::TreeAutomaton;
use crate::tree::{NodeAnnotation, UncertainTree};
use std::collections::BTreeMap;
use treelineage_circuit::{Circuit, Dnnf, GateId, Vtree, VtreeId};
use treelineage_num::{BigUint, Rational};

/// Errors reported by the structured compiler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StructuredDnnfError {
    /// The automaton is not bottom-up deterministic, so the ∨ over runs is
    /// not guaranteed deterministic (determinize first).
    NondeterministicAutomaton,
    /// An event controls more than one node, so subtree scopes overlap and
    /// the ∧ over children is not guaranteed decomposable.
    SharedEvent {
        /// The offending event (Boolean variable).
        event: usize,
    },
}

impl std::fmt::Display for StructuredDnnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructuredDnnfError::NondeterministicAutomaton => {
                write!(f, "automaton is not bottom-up deterministic")
            }
            StructuredDnnfError::SharedEvent { event } => {
                write!(f, "event {event} controls more than one node")
            }
        }
    }
}

impl std::error::Error for StructuredDnnfError {}

/// A certified smooth d-SDNNF for the provenance of a deterministic tree
/// automaton on an uncertain tree, together with its structure witness.
#[derive(Clone, Debug)]
pub struct StructuredDnnf {
    dnnf: Dnnf,
    vtree: Vtree,
    universe: Vec<usize>,
}

impl StructuredDnnf {
    /// Assembles a `StructuredDnnf` from parts the caller attests satisfy
    /// the module invariants: `dnnf` smooth with every gate's scope exactly
    /// its subtree's events, structured by `vtree`, over the sorted event
    /// `universe`. The parallel compilation engine (`treelineage-engine`)
    /// uses this to wrap circuits it builds byte-identically to
    /// [`compile_structured_dnnf`] from fragments compiled on worker
    /// threads; like [`Dnnf::from_trusted_circuit`], no properties are
    /// re-checked here — hand untrusted circuits to [`Dnnf::verify`] and
    /// [`Vtree::respects`] instead.
    pub fn from_trusted_parts(dnnf: Dnnf, vtree: Vtree, universe: Vec<usize>) -> Self {
        StructuredDnnf {
            dnnf,
            vtree,
            universe,
        }
    }

    /// The underlying d-DNNF (smooth, deterministic, decomposable).
    pub fn dnnf(&self) -> &Dnnf {
        &self.dnnf
    }

    /// The vtree the circuit is structured by (derived from the input tree:
    /// each tree node splits its own event from its children's scopes).
    pub fn vtree(&self) -> &Vtree {
        &self.vtree
    }

    /// The declared universe: all events of the uncertain tree, sorted.
    pub fn universe(&self) -> &[usize] {
        &self.universe
    }

    /// Size of the circuit (number of gates).
    pub fn size(&self) -> usize {
        self.dnnf.size()
    }

    /// Acceptance probability under independent event probabilities; one
    /// bottom-up pass, linear in the circuit size.
    pub fn probability(&self, prob: &dyn Fn(usize) -> Rational) -> Rational {
        self.dnnf.probability(prob)
    }

    /// Weighted model count with general per-literal weights (the circuit is
    /// smooth, so no padding pass is needed); linear in the circuit size.
    pub fn wmc(
        &self,
        pos: &dyn Fn(usize) -> Rational,
        neg: &dyn Fn(usize) -> Rational,
    ) -> Rational {
        self.dnnf.wmc(pos, neg)
    }

    /// Number of event valuations under which the automaton accepts: a
    /// single integer pass thanks to smoothness-by-construction.
    pub fn model_count(&self) -> BigUint {
        self.dnnf.count_models_smooth()
    }
}

/// [`compile_structured_dnnf`] under a `dsdnnf_compile` telemetry span:
/// the instrumented single-threaded pipelines route through this so the
/// sequential d-SDNNF construction shows up in span aggregates (the
/// fragment-parallel engine path records `dsdnnf_fragments` /
/// `dsdnnf_merge` spans of its own instead). Records nothing when
/// `telemetry` is disabled, and never changes the compiled artifact.
pub fn compile_structured_dnnf_traced(
    automaton: &TreeAutomaton,
    tree: &UncertainTree,
    telemetry: &treelineage_telemetry::Telemetry,
) -> Result<StructuredDnnf, StructuredDnnfError> {
    let _span = telemetry.span("dsdnnf_compile");
    compile_structured_dnnf(automaton, tree)
}

/// Compiles the provenance of a deterministic automaton on an uncertain tree
/// directly into a certified smooth d-SDNNF (see the module docs for the
/// invariants and why they hold). Rejects nondeterministic automata and
/// events shared between nodes; determinize / re-event first in those cases.
#[allow(clippy::needless_range_loop)] // `q` is a state id, not just an index
pub fn compile_structured_dnnf(
    automaton: &TreeAutomaton,
    tree: &UncertainTree,
) -> Result<StructuredDnnf, StructuredDnnfError> {
    if !automaton.is_deterministic() {
        return Err(StructuredDnnfError::NondeterministicAutomaton);
    }
    let mut seen_events: BTreeMap<usize, usize> = BTreeMap::new();
    for node in 0..tree.tree().node_count() {
        if let NodeAnnotation::Event { event, .. } = tree.annotation(crate::tree::NodeId(node)) {
            *seen_events.entry(event).or_insert(0) += 1;
        }
    }
    if let Some((&event, _)) = seen_events.iter().find(|(_, &count)| count > 1) {
        return Err(StructuredDnnfError::SharedEvent { event });
    }

    let mut circuit = Circuit::new();
    let false_gate = circuit.constant(false);
    let true_gate = circuit.constant(true);
    let states = automaton.state_count();
    let node_count = tree.tree().node_count();
    // gates[node][q]: either the false constant, the true constant (only for
    // event-free subtrees), or a gate whose scope is exactly the events of
    // the node's subtree — the smoothness invariant.
    let mut gates: Vec<Vec<GateId>> = vec![vec![false_gate; states]; node_count];
    // Vtree subtree covering each tree node's events (`None` if event-free),
    // assembled bottom-up alongside the gates.
    let mut vtree = Vtree::new();
    let mut vnodes: Vec<Option<VtreeId>> = vec![None; node_count];

    // Conjunction keeping the smoothness invariant: constants true drop out
    // (they carry no scope), `None` means the whole conjunct is true.
    let conjoin =
        |parts: Vec<GateId>, circuit: &mut Circuit, true_gate: GateId| -> Option<GateId> {
            let real: Vec<GateId> = parts.into_iter().filter(|&g| g != true_gate).collect();
            match real.len() {
                0 => None,
                1 => Some(real[0]),
                _ => Some(circuit.and(real)),
            }
        };

    for node in tree.tree().post_order() {
        let own_event = match tree.annotation(node) {
            NodeAnnotation::Fixed => None,
            NodeAnnotation::Event { event, .. } => Some(event),
        };
        match tree.tree().children(node) {
            None => {
                for q in 0..states {
                    gates[node.0][q] = match tree.annotation(node) {
                        NodeAnnotation::Fixed => {
                            if automaton.leaf_states(tree.tree().label(node)).contains(&q) {
                                true_gate
                            } else {
                                false_gate
                            }
                        }
                        NodeAnnotation::Event {
                            event,
                            if_true,
                            if_false,
                        } => {
                            let in_true = automaton.leaf_states(if_true).contains(&q);
                            let in_false = automaton.leaf_states(if_false).contains(&q);
                            match (in_true, in_false) {
                                // Smoothness: the gate must mention the
                                // event, so a both-labels state compiles to
                                // the tautology e ∨ ¬e, not to true.
                                (true, true) => {
                                    let v = circuit.var(event);
                                    let nv = circuit.not(v);
                                    circuit.or(vec![v, nv])
                                }
                                (false, false) => false_gate,
                                (true, false) => circuit.var(event),
                                (false, true) => {
                                    let v = circuit.var(event);
                                    circuit.not(v)
                                }
                            }
                        }
                    };
                }
                vnodes[node.0] = own_event.map(|e| vtree.leaf(e));
            }
            Some((left, right)) => {
                // Guarded label alternatives, as in `provenance_circuit`.
                let alternatives: Vec<(usize, Option<GateId>)> = match tree.annotation(node) {
                    NodeAnnotation::Fixed => vec![(tree.tree().label(node), None)],
                    NodeAnnotation::Event {
                        event,
                        if_true,
                        if_false,
                    } => {
                        let v = circuit.var(event);
                        let not_v = circuit.not(v);
                        vec![(if_true, Some(v)), (if_false, Some(not_v))]
                    }
                };
                // Iterate only over *live* (non-false) child states and push
                // each discovered run into its target state's disjunct list:
                // cost per node is |live_l| · |live_r| · |alternatives|
                // rather than |states|³, which is what keeps this linear on
                // the lazily-materialized automata of the encoding pipeline
                // (whose total state count far exceeds the per-node live
                // count). Discovery order per target state is (alternative,
                // left state, right state) lexicographic — identical to the
                // dense triple loop this replaces.
                let live_left: Vec<usize> = (0..states)
                    .filter(|&q| gates[left.0][q] != false_gate)
                    .collect();
                let live_right: Vec<usize> = (0..states)
                    .filter(|&q| gates[right.0][q] != false_gate)
                    .collect();
                let mut disjuncts: Vec<Vec<GateId>> = vec![Vec::new(); states];
                for &(label, guard) in &alternatives {
                    for &ql in &live_left {
                        for &qr in &live_right {
                            for &q in &automaton.internal_states(label, ql, qr) {
                                let gl = gates[left.0][ql];
                                let gr = gates[right.0][qr];
                                // Nested binary shape guard ∧ (gl ∧ gr):
                                // what the node's vtree split witnesses.
                                let inner = conjoin(vec![gl, gr], &mut circuit, true_gate);
                                let conj = match (guard, inner) {
                                    (None, None) => true_gate,
                                    (None, Some(g)) => g,
                                    (Some(gv), None) => gv,
                                    (Some(gv), Some(g)) => circuit.and(vec![gv, g]),
                                };
                                disjuncts[q].push(conj);
                            }
                        }
                    }
                }
                for (q, disjuncts) in disjuncts.into_iter().enumerate() {
                    gates[node.0][q] = match disjuncts.len() {
                        0 => false_gate,
                        1 => disjuncts[0],
                        _ => circuit.or(disjuncts),
                    };
                }
                // Vtree split for this node: own event against the combined
                // children scopes (skipping event-free parts).
                let children_v = match (vnodes[left.0], vnodes[right.0]) {
                    (None, None) => None,
                    (Some(l), None) => Some(l),
                    (None, Some(r)) => Some(r),
                    (Some(l), Some(r)) => Some(vtree.internal(l, r)),
                };
                vnodes[node.0] = match (own_event, children_v) {
                    (None, v) => v,
                    (Some(e), None) => Some(vtree.leaf(e)),
                    (Some(e), Some(v)) => {
                        let leaf = vtree.leaf(e);
                        Some(vtree.internal(leaf, v))
                    }
                };
            }
        }
    }

    let root = tree.tree().root();
    let accepting: Vec<GateId> = automaton
        .accepting_states()
        .iter()
        .map(|&q| gates[root.0][q])
        .filter(|&g| g != false_gate)
        .collect();
    let output = match accepting.len() {
        0 => false_gate,
        1 => accepting[0],
        _ => circuit.or(accepting),
    };
    circuit.set_output(output);
    if let Some(v) = vnodes[root.0] {
        vtree.set_root(v);
    }

    let dnnf = Dnnf::from_trusted_circuit(circuit)
        .expect("the structured construction is decomposable by construction");
    Ok(StructuredDnnf {
        dnnf,
        vtree,
        universe: tree.events(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{exists_one_automaton, parity_automaton};
    use crate::provenance::acceptance_probability_bruteforce;
    use crate::tree::{BinaryTree, NodeId};
    use std::collections::BTreeSet;

    fn uncertain_leaves(n: usize) -> UncertainTree {
        let tree = BinaryTree::comb(&vec![0; n], 2);
        let mut u = UncertainTree::certain(tree);
        let mut leaf_index = 0;
        for node in 0..u.tree().node_count() {
            if u.tree().is_leaf(NodeId(node)) {
                u.set_event(NodeId(node), leaf_index, 1, 0);
                leaf_index += 1;
            }
        }
        u
    }

    #[test]
    fn structured_compile_is_correct_and_certified() {
        let automaton = parity_automaton(2);
        for n in 1..=6 {
            let tree = uncertain_leaves(n);
            let s = compile_structured_dnnf(&automaton, &tree).unwrap();
            // Full certification: all three d-DNNF conditions, smoothness,
            // and the vtree witness.
            assert!(Dnnf::verify(s.dnnf().circuit().clone()).is_ok(), "n={n}");
            assert!(s.dnnf().is_smooth(), "n={n}");
            assert!(s.vtree().respects(s.dnnf().circuit()).is_ok(), "n={n}");
            // Semantics: agrees with acceptance on every valuation.
            let events = tree.events();
            for mask in 0u64..(1u64 << events.len()) {
                let true_events: BTreeSet<usize> = events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &e)| e)
                    .collect();
                let concrete = tree.instantiate(&|e| true_events.contains(&e));
                assert_eq!(
                    s.dnnf().circuit().evaluate_set(&true_events),
                    automaton.accepts(&concrete),
                    "n={n}, mask={mask}"
                );
            }
        }
    }

    #[test]
    fn model_count_and_probability_match_bruteforce() {
        let automaton = parity_automaton(2);
        let tree = uncertain_leaves(5);
        let s = compile_structured_dnnf(&automaton, &tree).unwrap();
        // Parity of 5 independent bits: half of the 32 valuations are odd.
        assert_eq!(s.model_count().to_u64(), Some(16));
        let prob = |e: usize| Rational::from_ratio_u64(1, e as u64 + 2);
        assert_eq!(
            s.probability(&prob),
            acceptance_probability_bruteforce(&automaton, &tree, &prob)
        );
        // WMC with probability weights equals the probability.
        let neg = |e: usize| prob(e).complement();
        assert_eq!(s.wmc(&prob, &neg), s.probability(&prob));
    }

    #[test]
    fn nondeterministic_automaton_is_rejected() {
        let nta = exists_one_automaton(2);
        let tree = uncertain_leaves(3);
        assert_eq!(
            compile_structured_dnnf(&nta, &tree).unwrap_err(),
            StructuredDnnfError::NondeterministicAutomaton
        );
        // After determinization it compiles, and agrees with the NTA.
        let (dta, _) = nta.determinize();
        let s = compile_structured_dnnf(&dta, &tree).unwrap();
        let prob = |_: usize| Rational::one_half();
        assert_eq!(
            s.probability(&prob),
            acceptance_probability_bruteforce(&nta, &tree, &prob)
        );
    }

    #[test]
    fn shared_event_is_rejected() {
        let automaton = parity_automaton(2);
        let mut tree = uncertain_leaves(3);
        // Make two leaves share event 0.
        let leaves: Vec<NodeId> = (0..tree.tree().node_count())
            .map(NodeId)
            .filter(|&n| tree.tree().is_leaf(n))
            .collect();
        tree.set_event(leaves[1], 0, 1, 0);
        assert_eq!(
            compile_structured_dnnf(&automaton, &tree).unwrap_err(),
            StructuredDnnfError::SharedEvent { event: 0 }
        );
    }

    #[test]
    fn internal_node_events_and_fixed_leaves() {
        // A tree whose internal node is controlled by an event switching the
        // internal label between 3 (the parity-combining label of
        // `parity_automaton(3)`) and 2 (no transitions: the automaton
        // rejects when event 9 is false, since no run exists).
        let mut t = BinaryTree::new();
        let a = t.leaf(1);
        let b = t.leaf(0);
        let root = t.internal(3, a, b);
        t.set_root(root);
        let mut u = UncertainTree::certain(t);
        u.set_event(root, 9, 3, 2);
        let automaton = parity_automaton(3);
        let s = compile_structured_dnnf(&automaton, &u).unwrap();
        assert!(s.dnnf().is_smooth());
        assert!(s.vtree().respects(s.dnnf().circuit()).is_ok());
        assert_eq!(s.universe(), &[9]);
        // Accepts iff event 9 is true (one 1-leaf, odd).
        assert_eq!(s.model_count().to_u64(), Some(1));
        let one_third = Rational::from_ratio_u64(1, 3);
        assert_eq!(s.probability(&|_| one_third.clone()), one_third);
    }

    #[test]
    fn certain_tree_compiles_to_a_constant() {
        let automaton = parity_automaton(2);
        let tree = UncertainTree::certain(BinaryTree::comb(&[1, 0, 1], 2));
        let s = compile_structured_dnnf(&automaton, &tree).unwrap();
        assert!(s.universe().is_empty());
        assert_eq!(s.model_count().to_u64(), Some(0)); // two 1s: even
        let tree = UncertainTree::certain(BinaryTree::comb(&[1, 0, 0], 2));
        let s = compile_structured_dnnf(&automaton, &tree).unwrap();
        assert_eq!(s.model_count().to_u64(), Some(1));
        assert!(s.probability(&|_| Rational::one_half()).is_one());
    }
}
