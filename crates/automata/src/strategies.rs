//! Reusable property-testing strategies for random uncertain trees and
//! deterministic bottom-up tree automata.
//!
//! The generators here feed both this crate's structural-invariant tests
//! (every generated provenance circuit must be decomposable, deterministic
//! and smooth) and the workspace-level cross-backend differential suite
//! (`tests/backend_differential.rs`), so they live in the public API rather
//! than behind `cfg(test)`. Generation is deterministic through the in-tree
//! `proptest` shim.

use crate::automaton::TreeAutomaton;
use crate::tree::{BinaryTree, UncertainTree};
use proptest::prelude::*;
use proptest::strategy::TestRng;

/// A strategy generating random [`UncertainTree`]s: a random full binary
/// tree shape with up to `max_leaves` leaves, labels drawn from
/// `0..alphabet`, and each node independently (with probability 1/2)
/// controlled by its own fresh event choosing between two labels. Events are
/// never shared between nodes, so the trees are accepted by the structured
/// compiler; the number of events is at most `2 * max_leaves - 1` (keep
/// `max_leaves` small when brute-forcing over valuations).
pub fn uncertain_tree(max_leaves: usize, alphabet: usize) -> impl Strategy<Value = UncertainTree> {
    assert!(max_leaves >= 1 && alphabet >= 1);
    (any::<u64>(), 1..max_leaves + 1).prop_map(move |(seed, leaves)| {
        let mut rng = TestRng::new(seed);
        let mut tree = BinaryTree::new();
        // Build a random shape by repeatedly merging two random roots of the
        // current forest under a fresh internal node.
        let mut roots: Vec<crate::tree::NodeId> = (0..leaves)
            .map(|_| tree.leaf(rng.next_u64() as usize % alphabet))
            .collect();
        while roots.len() > 1 {
            let i = rng.next_u64() as usize % roots.len();
            let left = roots.swap_remove(i);
            let j = rng.next_u64() as usize % roots.len();
            let right = roots.swap_remove(j);
            let label = rng.next_u64() as usize % alphabet;
            roots.push(tree.internal(label, left, right));
        }
        tree.set_root(roots[0]);
        let mut uncertain = UncertainTree::certain(tree);
        let mut event = 0;
        for node in 0..uncertain.tree().node_count() {
            if rng.next_u64() & 1 == 1 {
                let if_true = rng.next_u64() as usize % alphabet;
                let if_false = rng.next_u64() as usize % alphabet;
                uncertain.set_event(crate::tree::NodeId(node), event, if_true, if_false);
                event += 1;
            }
        }
        uncertain
    })
}

/// A strategy generating random *deterministic* bottom-up [`TreeAutomaton`]s
/// with `states` states over `0..alphabet`: every leaf label and every
/// `(label, left, right)` combination independently gets either no
/// transition (with probability 1/4, exercising partial runs and the
/// constant-false gates they induce) or exactly one random target state; the
/// accepting set is a random subset of the states. Determinism holds by
/// construction ([`TreeAutomaton::is_deterministic`] is asserted).
pub fn deterministic_automaton(
    states: usize,
    alphabet: usize,
) -> impl Strategy<Value = TreeAutomaton> {
    assert!(states >= 1 && alphabet >= 1);
    any::<u64>().prop_map(move |seed| {
        let mut rng = TestRng::new(seed ^ 0x5eed_a070_a070_a070);
        let mut automaton = TreeAutomaton::new(states, alphabet);
        for label in 0..alphabet {
            if !rng.next_u64().is_multiple_of(4) {
                automaton.add_leaf_transition(label, rng.next_u64() as usize % states);
            }
            for left in 0..states {
                for right in 0..states {
                    if !rng.next_u64().is_multiple_of(4) {
                        automaton.add_internal_transition(
                            label,
                            left,
                            right,
                            rng.next_u64() as usize % states,
                        );
                    }
                }
            }
        }
        for state in 0..states {
            if rng.next_u64() & 1 == 1 {
                automaton.add_accepting(state);
            }
        }
        assert!(automaton.is_deterministic());
        automaton
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::strategy::TestRng;

    #[test]
    fn generated_trees_have_fresh_events_and_valid_shape() {
        let strategy = uncertain_tree(6, 3);
        let mut rng = TestRng::from_name("generated_trees_have_fresh_events_and_valid_shape");
        for _ in 0..64 {
            let tree = strategy.generate(&mut rng);
            assert!(tree.tree().node_count() <= 11);
            let events = tree.events();
            // `events()` sorts and dedups; freshness means the count matches
            // the number of event-annotated nodes.
            let annotated = (0..tree.tree().node_count())
                .filter(|&n| {
                    !matches!(
                        tree.annotation(crate::tree::NodeId(n)),
                        crate::tree::NodeAnnotation::Fixed
                    )
                })
                .count();
            assert_eq!(events.len(), annotated);
            assert!(tree.alphabet_size() <= 3);
        }
    }

    #[test]
    fn generated_automata_are_deterministic_and_varied() {
        let strategy = deterministic_automaton(3, 2);
        let mut rng = TestRng::from_name("generated_automata_are_deterministic_and_varied");
        let mut accepting_seen = false;
        let mut rejecting_seen = false;
        for _ in 0..64 {
            let automaton = strategy.generate(&mut rng);
            assert!(automaton.is_deterministic());
            if automaton.accepting_states().is_empty() {
                rejecting_seen = true;
            } else {
                accepting_seen = true;
            }
        }
        assert!(accepting_seen && rejecting_seen);
    }
}
