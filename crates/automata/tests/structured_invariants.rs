//! Structural invariants of the structured d-SDNNF compiler, checked on
//! *every* generated circuit (not just hand-picked examples): the three
//! d-DNNF conditions of Definition 6.10 — negations on inputs,
//! decomposability of every ∧, determinism of every ∨ (checked exhaustively
//! by `Dnnf::verify`) — plus smoothness-by-construction and the vtree
//! structure witness, on random deterministic automata over random uncertain
//! trees from the reusable `strategies` generators.

use proptest::prelude::*;
use std::collections::BTreeSet;
use treelineage_automata::{
    acceptance_probability_bruteforce, compile_structured_dnnf, provenance_circuit, strategies,
};
use treelineage_circuit::{Dnnf, Gate};
use treelineage_num::Rational;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_generated_circuit_is_a_certified_smooth_dsdnnf(
        tree in strategies::uncertain_tree(5, 3),
        automaton in strategies::deterministic_automaton(3, 3),
    ) {
        let s = compile_structured_dnnf(&automaton, &tree).unwrap();
        let circuit = s.dnnf().circuit();

        // Decomposability: every ∧ gate's children depend on disjoint
        // variable sets (checked directly, gate by gate).
        let deps = circuit.gate_dependencies();
        for id in circuit.gate_ids() {
            if let Gate::And(inputs) = circuit.gate(id) {
                let mut seen: BTreeSet<usize> = BTreeSet::new();
                for &i in inputs {
                    for &v in &deps[i.0] {
                        prop_assert!(seen.insert(v), "AND {:?} shares variable {}", id, v);
                    }
                }
            }
        }

        // Determinism: no valuation satisfies two children of any ∨ gate
        // (exhaustive; generator keeps the event count small).
        prop_assert!(tree.events().len() <= 11);
        prop_assert!(Dnnf::verify(circuit.clone()).is_ok());

        // Smoothness by construction: no separate smoothing pass needed.
        prop_assert!(s.dnnf().is_smooth());

        // Structure witness: the circuit is structured by the tree-derived
        // vtree, whose scope is exactly the event universe.
        prop_assert!(s.vtree().respects(circuit).is_ok());
        let universe: BTreeSet<usize> = s.universe().iter().copied().collect();
        prop_assert_eq!(s.vtree().variables(), universe);
    }

    #[test]
    fn structured_compiler_agrees_with_raw_provenance_and_bruteforce(
        tree in strategies::uncertain_tree(4, 2),
        automaton in strategies::deterministic_automaton(2, 2),
    ) {
        let s = compile_structured_dnnf(&automaton, &tree).unwrap();
        let raw = provenance_circuit(&automaton, &tree);
        let events = tree.events();
        prop_assert!(events.len() <= 7);

        // Same Boolean function as the unstructured provenance circuit, and
        // both agree with acceptance on every valuation.
        let mut models = 0u64;
        for mask in 0u64..(1u64 << events.len()) {
            let true_events: BTreeSet<usize> = events
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let expected = automaton.accepts(&tree.instantiate(&|e| true_events.contains(&e)));
            prop_assert_eq!(s.dnnf().circuit().evaluate_set(&true_events), expected);
            prop_assert_eq!(raw.evaluate_set(&true_events), expected);
            if expected {
                models += 1;
            }
        }

        // One-pass model count and probability against brute force.
        prop_assert_eq!(s.model_count().to_u64(), Some(models));
        let prob = |e: usize| Rational::from_ratio_u64(1, e as u64 + 2);
        prop_assert_eq!(
            s.probability(&prob),
            acceptance_probability_bruteforce(&automaton, &tree, &prob)
        );

        // WMC with general (non-probability) weights against direct
        // enumeration.
        let pos = |e: usize| Rational::from_ratio_u64(e as u64 + 2, 3);
        let neg = |e: usize| Rational::from_ratio_u64(1, e as u64 + 1);
        let mut expected_wmc = Rational::zero();
        for mask in 0u64..(1u64 << events.len()) {
            let true_events: BTreeSet<usize> = events
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            if !automaton.accepts(&tree.instantiate(&|e| true_events.contains(&e))) {
                continue;
            }
            let mut weight = Rational::one();
            for &e in &events {
                if true_events.contains(&e) {
                    weight *= &pos(e);
                } else {
                    weight *= &neg(e);
                }
            }
            expected_wmc += &weight;
        }
        prop_assert_eq!(s.wmc(&pos, &neg), expected_wmc);
    }
}
