//! Shared helpers for the benchmark harness (see the `benches/` directory and the `tables` binary).
