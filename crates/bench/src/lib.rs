//! Shared helpers for the benchmark harness (see the `benches/` directory and the `tables` binary).

use treelineage_num::Rational;

/// The dyadic per-fact probability weights used by both the `tables`
/// binary's d-SDNNF evaluation column and the `backend_comparison` bench —
/// one definition so the two always measure the same workload. Dyadic
/// denominators (powers of two) keep exact rational arithmetic cheap at
/// hundreds of facts: common denominators never need large gcds.
pub fn dyadic_prob(v: usize) -> Rational {
    let (num, den) = [(1u64, 2u64), (1, 4), (3, 4), (1, 8), (5, 8)][v % 5];
    Rational::from_ratio_u64(num, den)
}
