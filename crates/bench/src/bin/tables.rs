//! Regenerates the paper's tables and dichotomy experiments as text output.
//!
//! Run with `cargo run -p treelineage-bench --bin tables --release`. Each
//! section corresponds to an experiment id of DESIGN.md §3 and a row of
//! EXPERIMENTS.md; timings are the job of the Criterion benches, this binary
//! reports the *sizes and widths* that the paper's statements are about.

use std::time::Instant;
use treelineage::prelude::*;
use treelineage_circuit::{parity_circuit, parity_formula, threshold2_circuit, threshold2_formula};
use treelineage_datalog::{
    evaluate_datalog, evaluate_ra, ra_result_formula_size, DatalogProgram, RaExpression,
};
use treelineage_graph::generators;
use treelineage_hardness as hardness;
use treelineage_instance::encodings;
use treelineage_query::intricate;
use treelineage_safe as safe;

fn main() {
    table2_upper();
    table2_lower();
    table1_and_counting();
    dichotomies();
    engine_section();
    telemetry_section();
    tracing_section();
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn table2_upper() {
    header("Table 2 (upper bounds): lineage representations on treelike instances");

    // T2-U1 / T2-U2: bounded pathwidth -> constant-width OBDD, linear circuit.
    // Compiled through the shared dd engine; the last columns report its
    // store/cache statistics (nodes kept once under complement-edge sharing,
    // persistent op-cache hit rate).
    println!("\n[T2-U1/U2] bounded-pathwidth chains, query R(x),S(x,y),T(y)");
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>8} {:>12} {:>10}",
        "n",
        "facts",
        "circuit",
        "obdd width",
        "obdd size",
        "dd nodes",
        "hits",
        "misses",
        "hit%",
        "dsdnnf size",
        "dsdnnf"
    );
    for n in [25usize, 50, 100, 200, 400] {
        let mut inst = Instance::new(sig.clone());
        for i in 0..n as u64 {
            inst.add_fact_by_name("R", &[i]);
            inst.add_fact_by_name("S", &[i, i + 1]);
            inst.add_fact_by_name("T", &[i + 1]);
        }
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        let circuit = builder.circuit();
        let (manager, root) = builder.dd();
        let stats = manager.stats();
        let t0 = Instant::now();
        let structured = builder.structured_dnnf();
        let t_dsdnnf = t0.elapsed();
        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>7.1}% {:>12} {:>8.2}ms",
            n,
            inst.fact_count(),
            circuit.size(),
            manager.width(root),
            manager.size(root),
            stats.node_count,
            stats.op_cache_hits,
            stats.op_cache_misses,
            stats.hit_rate_percent(),
            structured.size(),
            t_dsdnnf.as_secs_f64() * 1e3
        );
    }

    // T2-U3/U4/U5: bounded treewidth -> polynomial OBDD, linear circuit,
    // d-DNNF — plus the structured d-SDNNF backend's artifact size and its
    // compile / one-pass evaluation times.
    println!("\n[T2-U3/U4/U5] random partial 2-trees, query S(x,y),S(y,z) with x != z");
    let sig2 = Signature::builder()
        .relation("S", 2)
        .relation("R", 2)
        .build();
    let q2 = parse_query(&sig2, "S(x, y), S(y, z), x != z").unwrap();
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8} {:>12} {:>12} {:>12}",
        "n",
        "facts",
        "circuit",
        "obdd width",
        "obdd size",
        "ddnnf size",
        "dd nodes",
        "hit%",
        "dsdnnf size",
        "compile",
        "wmc pass"
    );
    for n in [20usize, 40, 80, 160] {
        let inst = encodings::random_treelike_instance(&sig2, n, 2, 7);
        let builder = LineageBuilder::new(&q2, &inst).unwrap();
        let (manager, root) = builder.dd();
        let stats = manager.stats();
        let t0 = Instant::now();
        let structured = builder.structured_dnnf();
        let t_compile = t0.elapsed();
        let t1 = Instant::now();
        let _ = structured.probability(&treelineage_bench::dyadic_prob);
        let t_eval = t1.elapsed();
        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10} {:>7.1}% {:>12} {:>10.2}ms {:>10.2}ms",
            n,
            inst.fact_count(),
            builder.circuit().size(),
            manager.width(root),
            manager.size(root),
            builder.ddnnf().size(),
            stats.node_count,
            stats.hit_rate_percent(),
            structured.size(),
            t_compile.as_secs_f64() * 1e3,
            t_eval.as_secs_f64() * 1e3
        );
    }

    // T2-U6: inversion-free UCQ on arbitrary instances via unfolding.
    println!("\n[T2-U6] inversion-free UCQ R(x),S(x,y) on dense instances: OBDD width before/after unfolding");
    let sig3 = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .build();
    let q3 = parse_query(&sig3, "R(x), S(x, y)").unwrap();
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>12}",
        "n", "facts", "width (orig)", "width (unfold)", "tree-depth"
    );
    for n in [3u64, 6, 9, 12] {
        let mut inst = Instance::new(sig3.clone());
        for a in 1..=n {
            inst.add_fact_by_name("R", &[a]);
            for c in 1..=4u64 {
                inst.add_fact_by_name("S", &[a, n + c]);
            }
        }
        let width_orig = {
            let (manager, root) = LineageBuilder::new(&q3, &inst).unwrap().dd();
            manager.width(root)
        };
        let unfolding = safe::unfold_for_query(&q3, &inst).unwrap();
        let width_unf = {
            let (manager, root) = LineageBuilder::new(&q3, &unfolding.instance).unwrap().dd();
            manager.width(root)
        };
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>12}",
            n,
            inst.fact_count(),
            width_orig,
            width_unf,
            unfolding.tree_depth
        );
    }

    // T2-U7/U8: positive RA formulas and Datalog circuits on any instance.
    println!("\n[T2-U7/U8] positive RA lineage formulas and Datalog provenance circuits (paths)");
    let esig = Signature::builder().relation("E", 2).build();
    let e = esig.relation_by_name("E").unwrap();
    println!(
        "{:>8} {:>14} {:>16} {:>18}",
        "n", "RA formula", "Datalog circuit", "TC formula (0,n-1)"
    );
    for n in [6usize, 8, 10, 12] {
        let inst = encodings::graph_instance(&generators::path_graph(n), &esig, e);
        let expr = RaExpression::Project {
            input: Box::new(RaExpression::Join {
                left: Box::new(RaExpression::Relation(e)),
                right: Box::new(RaExpression::Relation(e)),
                on: vec![(1, 0)],
            }),
            columns: vec![0, 3],
        };
        let ra_size = ra_result_formula_size(&evaluate_ra(&expr, &inst));
        let program = DatalogProgram::transitive_closure(e);
        let provenance = evaluate_datalog(&program, &inst);
        let formula = treelineage_datalog::datalog_lineage_formula(
            &provenance,
            0,
            &vec![Element(0), Element(n as u64 - 1)],
            10_000_000,
        )
        .unwrap();
        println!(
            "{:>8} {:>14} {:>16} {:>18}",
            n,
            ra_size,
            provenance.circuit.size(),
            formula.node_size()
        );
    }
}

fn table2_lower() {
    header("Table 2 (lower bounds): formula representations (Section 7)");
    println!("\n[T2-L1/L2/L3] circuit vs formula sizes for the lineage families");
    println!(
        "{:>6} {:>14} {:>16} {:>16} {:>14} {:>16}",
        "n", "thr2 circuit", "thr2 formula", "thr2 naive", "parity circuit", "parity formula"
    );
    for n in [16usize, 32, 64, 128] {
        let vars: Vec<usize> = (0..n).collect();
        println!(
            "{:>6} {:>14} {:>16} {:>16} {:>14} {:>16}",
            n,
            threshold2_circuit(&vars).size(),
            threshold2_formula(&vars).leaf_size(),
            treelineage_circuit::threshold2_formula_naive(&vars).leaf_size(),
            parity_circuit(&vars).size(),
            parity_formula(&vars).leaf_size()
        );
    }
    println!(
        "\n(reference growth rates: thr2 formula ~ n log n vs Omega(n log log n) lower bound;"
    );
    println!(" parity formula = n^2 vs Omega(n^2) lower bound; circuits stay linear)");

    println!("\n[T2-L4] Datalog: transitive-closure provenance, circuit vs unfolded formula");
    let esig = Signature::builder().relation("E", 2).build();
    let e = esig.relation_by_name("E").unwrap();
    println!("{:>6} {:>16} {:>18}", "n", "circuit gates", "formula nodes");
    for n in [4usize, 6, 8, 10] {
        let inst = encodings::graph_instance(&generators::path_graph(n), &esig, e);
        let provenance = evaluate_datalog(&DatalogProgram::transitive_closure(e), &inst);
        let formula = treelineage_datalog::datalog_lineage_formula(
            &provenance,
            0,
            &vec![Element(0), Element(n as u64 - 1)],
            10_000_000,
        )
        .unwrap();
        println!(
            "{:>6} {:>16} {:>18}",
            n,
            provenance.circuit.size(),
            formula.node_size()
        );
    }
}

fn table1_and_counting() {
    header(
        "Table 1 / Theorems 5.2, 5.7: evaluation and counting on bounded vs unbounded treewidth",
    );
    println!(
        "\n[T1-A] model checking and probability on partial 2-trees (times in ms, single run)"
    );
    let sig = Signature::builder()
        .relation("S", 2)
        .relation("R", 2)
        .build();
    let q = parse_query(&sig, "S(x, y), S(y, z), x != z").unwrap();
    println!(
        "{:>8} {:>10} {:>14} {:>16}",
        "n", "facts", "model check", "probability"
    );
    for n in [50usize, 100, 200, 400] {
        let inst = encodings::random_treelike_instance(&sig, n, 2, 11);
        let valuation = ProbabilityValuation::all_one_half(&inst);
        let t0 = Instant::now();
        let _ = treelineage::model_check(&q, &inst);
        let t_mc = t0.elapsed();
        let t1 = Instant::now();
        let _ = ProbabilityEvaluator::new(&inst, &valuation)
            .query_probability(&q)
            .unwrap();
        let t_prob = t1.elapsed();
        println!(
            "{:>8} {:>10} {:>12.2}ms {:>14.2}ms",
            n,
            inst.fact_count(),
            t_mc.as_secs_f64() * 1e3,
            t_prob.as_secs_f64() * 1e3
        );
    }

    println!(
        "\n[T1-B] match counting (selection subsets with an internal edge) vs independent-set DP"
    );
    let selsig = Signature::builder()
        .relation("E", 2)
        .relation("Sel", 1)
        .build();
    let e = selsig.relation_by_name("E").unwrap();
    let qc = parse_query(&selsig, "E(x, y), Sel(x), Sel(y)").unwrap();
    println!(
        "{:>8} {:>22} {:>22}",
        "n", "non-independent sets", "independent sets"
    );
    for n in [6usize, 10, 14, 18] {
        let graph = generators::path_graph(n);
        let inst = encodings::graph_instance(&graph, &selsig, e);
        let counter = MatchCounter::new(&qc, &inst, vec!["Sel"]);
        let bad = counter.count().unwrap();
        let independent = treelineage_graph::counting::count_independent_sets(&graph);
        println!(
            "{:>8} {:>22} {:>22}",
            n,
            bad.to_decimal_string(),
            independent.to_decimal_string()
        );
    }
}

fn dichotomies() {
    header("Dichotomy experiments (Theorems 4.2, 8.1, 8.7, 9.7)");

    println!("\n[D-4.2b] #matchings of 3-regular (planar) graphs via probability of q_p (all-1/2 valuation)");
    println!(
        "{:>20} {:>8} {:>18} {:>18}",
        "graph", "edges", "from probability", "direct DP"
    );
    for (name, graph) in [
        ("prism CL_3", generators::circular_ladder_graph(3)),
        ("prism CL_4", generators::circular_ladder_graph(4)),
        ("prism CL_5", generators::circular_ladder_graph(5)),
        ("moebius ML_4", generators::moebius_ladder_graph(4)),
    ] {
        let result = hardness::matching_reduction(&graph);
        println!(
            "{:>20} {:>8} {:>18} {:>18}",
            name,
            graph.edge_count(),
            result.matchings_from_probability.to_decimal_string(),
            result.matchings_direct.to_decimal_string()
        );
    }

    println!("\n[D-8.1] OBDD width of q_p: grids (unbounded treewidth) vs chains (treewidth 1)");
    println!("{:>14} {:>10} {:>12}", "instance", "facts", "obdd width");
    for n in [2usize, 3, 4, 5] {
        let (w, _) = hardness::obdd_width_of_qp_on_grid(n);
        println!(
            "{:>14} {:>10} {:>12}",
            format!("{n}x{n} grid"),
            2 * n * (n - 1),
            w
        );
    }
    for len in [20usize, 40, 80] {
        let (w, _) = hardness::obdd_width_of_qp_on_chain(len);
        println!("{:>14} {:>10} {:>12}", format!("chain {len}"), len, w);
    }

    println!("\n[D-8.7] intricacy classification (Lemma 8.6)");
    let single = Signature::builder().relation("S", 2).build();
    let rst = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let qp = hardness::qp(&single);
    let unsafe_q = parse_query(&rst, "R(x), S(x, y), T(y)").unwrap();
    let cq_neq = parse_query(&single, "S(x, y), S(y, z), x != z").unwrap();
    println!(
        "  q_p intricate (0-intricate): {}",
        intricate::is_n_intricate(&qp, 0)
    );
    println!(
        "  R(x),S(x,y),T(y) intricate:  {}",
        intricate::is_intricate(&unsafe_q)
    );
    println!(
        "  connected CQ!= intricate:    {}",
        intricate::is_intricate(&cq_neq)
    );

    println!("\n[D-8.7b/8.9] non-intricate & homomorphism-closed queries on unbounded-treewidth families");
    println!("{:>26} {:>6} {:>12}", "family", "n", "obdd width");
    for n in [2usize, 4, 6] {
        let (w, _) = hardness::obdd_width_of_unsafe_query_on_s_grid(n);
        println!("{:>26} {:>6} {:>12}", "R,S,T on S-grid", n, w);
    }
    for n in [2usize, 4, 6] {
        let (w, _) = hardness::obdd_width_of_ucq_on_bipartite(n);
        println!("{:>26} {:>6} {:>12}", "UCQ on complete bipartite", n, w);
    }

    println!("\n[D-8.10] disconnected q_d on grids");
    println!("{:>10} {:>12}", "grid", "obdd width");
    for n in [2usize, 3, 4] {
        let (w, _) = hardness::obdd_width_of_qd_on_grid(n);
        println!("{:>10} {:>12}", format!("{n}x{n}"), w);
    }

    println!("\n[D-9.7] unfolding of inversion-free UCQs (see T2-U6 above for widths/tree-depth)");
    let sig3 = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .build();
    let q3 = parse_query(&sig3, "R(x), S(x, y)").unwrap();
    println!(
        "  R(x),S(x,y) inversion-free:      {}",
        safe::is_inversion_free(&q3)
    );
    let rst_q = parse_query(&rst, "R(x), S(x, y), T(y)").unwrap();
    println!(
        "  R(x),S(x,y),T(y) inversion-free: {}",
        safe::is_inversion_free(&rst_q)
    );
}

/// E-7: the parallel engine, routed through the same `with_engine_config`
/// knob every entry point shares. `TREELINEAGE_THREADS` (default 1) sets
/// the worker count; results are bit-identical at every setting — this
/// section prints the artifact sizes and a wall-clock so CI exercises the
/// parallel path end to end, while the scaling numbers proper live in the
/// `engine_scaling` Criterion bench (EXPERIMENTS.md §E-7).
fn engine_section() {
    let threads: usize = std::env::var("TREELINEAGE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    header(&format!("E-7: parallel engine (threads = {threads})"));
    let config = EngineConfig::with_threads(threads);

    let sig = Signature::builder().relation("S", 2).build();
    let q = parse_query(&sig, "S(x, y), S(y, z), x != z").unwrap();
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "star n", "facts", "dsdnnf size", "fragments", "compile", "eval"
    );
    for n in [500usize, 2000, 4000] {
        let mut inst = Instance::new(sig.clone());
        for leaf in 1..=n as u64 {
            if leaf % 2 == 0 {
                inst.add_fact_by_name("S", &[0, leaf]);
            } else {
                inst.add_fact_by_name("S", &[leaf, 0]);
            }
        }
        let bags: Vec<std::collections::BTreeSet<usize>> = (1..=n)
            .map(|leaf| [0usize, leaf].into_iter().collect())
            .collect();
        let td = TreeDecomposition::path_from_bags(bags);
        let t0 = Instant::now();
        let lineage = LineageBuilder::new(&q, &inst)
            .unwrap()
            .with_decomposition(td)
            .unwrap()
            .with_engine_config(config.clone())
            .automaton_lineage()
            .unwrap();
        let t_compile = t0.elapsed();
        let t1 = Instant::now();
        let _ = lineage.model_count();
        let t_eval = t1.elapsed();
        println!(
            "{:>8} {:>10} {:>12} {:>10} {:>10.2}ms {:>10.2}ms",
            n,
            inst.fact_count(),
            lineage.size(),
            lineage.parallel().partition().fragments().len(),
            t_compile.as_secs_f64() * 1e3,
            t_eval.as_secs_f64() * 1e3
        );
    }

    // Batched serving: one EvalSession, many repeated requests — the
    // compile happens once and every further request is a cache hit plus
    // one linear pass.
    let mut session = EvalSession::with_backend(config, SessionBackend::Automaton);
    let rst = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let q = parse_query(&rst, "R(x), S(x, y), T(y)").unwrap();
    let mut inst = Instance::new(rst.clone());
    for i in 0..200u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    let qid = session.register_query(q);
    let iid = session.register_instance(inst);
    let requests: Vec<_> = (0..32).map(|_| (qid, iid)).collect();
    let t0 = Instant::now();
    let cold = session.batch_model_count(&requests);
    let t_cold = t0.elapsed();
    let t1 = Instant::now();
    let warm = session.batch_model_count(&requests);
    let t_warm = t1.elapsed();
    let stats = session.stats();
    println!(
        "\n  EvalSession: {} model-count requests — cold batch {:.2}ms ({} compile, \
         batch deduplicated to 1 evaluation), warm batch {:.2}ms ({} cache hit)",
        cold.len(),
        t_cold.as_secs_f64() * 1e3,
        stats.lineage_misses,
        t_warm.as_secs_f64() * 1e3,
        stats.lineage_hits
    );
    assert!(cold.iter().all(|c| c.is_ok()));
    assert_eq!(cold, warm);
}

/// E-9: the unified telemetry layer. One instrumented FloatFirst session
/// serves a mixed batch (exact probabilities, certified-float thresholds,
/// model counts), one instrumented SharedDd session seeds a dd shard, and
/// the merged `EvalSession::metrics()` snapshot is printed three ways:
/// stage spans, per-(kind, tier) request counters with cache occupancy,
/// and excerpts of the JSON-lines / Prometheus exports. The byte-identity
/// guarantee (telemetry on == telemetry off, gate for gate) is pinned by
/// `tests/telemetry_differential.rs`; this section is the human-readable
/// view CI logs.
fn telemetry_section() {
    use treelineage::{ProbabilityRequest, ThresholdRequest};

    let threads: usize = std::env::var("TREELINEAGE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    header(&format!("E-9: unified telemetry (threads = {threads})"));
    let config = EngineConfig {
        telemetry: Telemetry::enabled(),
        ..EngineConfig::with_threads(threads)
    };

    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    let mut inst = Instance::new(sig.clone());
    for i in 0..100u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }

    let mut session = EvalSession::with_backend(config.clone(), SessionBackend::FloatFirst);
    let qid = session.register_query(q.clone());
    let iid = session.register_instance(inst.clone());
    let valuation = ProbabilityValuation::from_probabilities(
        &inst,
        (0..inst.fact_count())
            .map(|f| Rational::from_ratio_u64(1, (f as u64 % 3) + 2))
            .collect(),
    );
    let probability_requests: Vec<ProbabilityRequest> = (0..8)
        .map(|_| ProbabilityRequest {
            query: qid,
            instance: iid,
            valuation: valuation.clone(),
        })
        .collect();
    let threshold_requests: Vec<ThresholdRequest> = (0..8)
        .map(|k| ThresholdRequest {
            query: qid,
            instance: iid,
            valuation: valuation.clone(),
            threshold: Rational::from_ratio_u64(1 + k % 3, 1000),
        })
        .collect();
    assert!(session
        .batch_probability(&probability_requests)
        .iter()
        .all(|r| r.is_ok()));
    assert!(session
        .batch_probability_f64(&probability_requests)
        .iter()
        .all(|r| r.is_ok()));
    assert!(session
        .batch_threshold(&threshold_requests)
        .iter()
        .all(|r| r.is_ok()));
    assert!(session
        .batch_model_count(&[(qid, iid)])
        .iter()
        .all(|r| r.is_ok()));

    // A second instrumented session on the shared-dd backend, so the
    // snapshot below also demonstrates the per-shard dd gauges.
    let mut dd_session = EvalSession::with_backend(config, SessionBackend::SharedDd);
    let dq = dd_session.register_query(q);
    let di = dd_session.register_instance(inst);
    assert!(dd_session
        .batch_model_count(&[(dq, di)])
        .iter()
        .all(|r| r.is_ok()));

    let snap = session.metrics();
    println!("\n  pipeline stage spans (one warm FloatFirst session):");
    println!(
        "  {:>24} {:>7} {:>12} {:>12} {:>12}",
        "span", "count", "total ms", "min ms", "max ms"
    );
    for span in &snap.spans {
        println!(
            "  {:>24} {:>7} {:>12.3} {:>12.3} {:>12.3}",
            span.name,
            span.count,
            span.total_ns as f64 / 1e6,
            span.min_ns as f64 / 1e6,
            span.max_ns as f64 / 1e6
        );
    }

    println!("\n  requests by (kind, tier):");
    for c in snap.counters.iter().filter(|c| c.name == "requests_total") {
        let label = |key: &str| {
            c.labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        println!(
            "  {:>24} {:>12} {:>7}",
            label("kind"),
            label("tier"),
            c.value
        );
    }
    println!(
        "  span ring: {} events dropped under capacity pressure",
        snap.counter("telemetry_dropped_span_events_total", &[])
            .unwrap_or(0)
    );

    println!("\n  request latency quantiles by (kind, tier):");
    for h in snap
        .histograms
        .iter()
        .filter(|h| h.name == "request_latency_ns")
    {
        let label = |key: &str| {
            h.labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        let quantile = |q: f64| match h.quantile(q) {
            Some(u64::MAX) => "+Inf".to_string(),
            Some(bound) => format!("{:.3}ms", bound as f64 / 1e6),
            None => "-".to_string(),
        };
        println!(
            "  {:>24} {:>12} p50<={:>10} p95<={:>10} p99<={:>10}",
            label("kind"),
            label("tier"),
            quantile(0.50),
            quantile(0.95),
            quantile(0.99)
        );
    }

    let occupancy = session.cache_occupancy();
    println!(
        "  caches: lineage {}/{}, query machines {}/{}, encodings {}, dd shards {}",
        occupancy.lineage_entries,
        occupancy.lineage_capacity,
        occupancy.machine_entries,
        occupancy.machine_capacity,
        occupancy.encodings,
        occupancy.dd_shards
    );
    for (instance, stats) in dd_session.dd_shard_stats() {
        println!(
            "  dd shard {}: {} nodes, unique table {}, op-cache {} ({} hits / {} misses)",
            instance.index(),
            stats.node_count,
            stats.unique_table_len,
            stats.op_cache_len,
            stats.op_cache_hits,
            stats.op_cache_misses
        );
    }

    let json = snap.to_json_lines();
    let prometheus = snap.to_prometheus();
    println!(
        "\n  exports: {} JSON lines, {} Prometheus lines; first of each:",
        json.lines().count(),
        prometheus.lines().count()
    );
    for line in json.lines().take(2) {
        println!("    {line}");
    }
    for line in prometheus.lines().take(3) {
        println!("    {line}");
    }
}

/// E-10: request-scoped tracing. One instrumented session serves a cold
/// `explain()` and a warm batch; the section prints the per-request
/// EXPLAIN report (stable JSON), the flight recorder's slowest retained
/// traces, and the head of the Chrome-trace/Perfetto export of the drained
/// span ring — the artifact that opens directly in ui.perfetto.dev. The
/// cross-thread parenting contract (one connected trace per request at any
/// thread count) is pinned by `tests/tracing_differential.rs`.
fn tracing_section() {
    use treelineage::ProbabilityRequest;
    use treelineage_engine::to_chrome_trace;

    let threads: usize = std::env::var("TREELINEAGE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    header(&format!(
        "E-10: request-scoped tracing (threads = {threads})"
    ));
    let telemetry = Telemetry::enabled();
    let config = EngineConfig {
        telemetry: telemetry.clone(),
        // Retain every request of this small demo in the flight recorder.
        flight_recorder_threshold_ns: 0,
        flight_recorder_capacity: 4,
        ..EngineConfig::with_threads(threads)
    };

    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    let mut inst = Instance::new(sig);
    for i in 0..60u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    let mut session = EvalSession::with_backend(config, SessionBackend::FloatFirst);
    let qid = session.register_query(q);
    let iid = session.register_instance(inst.clone());
    let valuation = ProbabilityValuation::from_probabilities(
        &inst,
        (0..inst.fact_count())
            .map(|f| Rational::from_ratio_u64(1, (f as u64 % 3) + 2))
            .collect(),
    );
    let request = ProbabilityRequest {
        query: qid,
        instance: iid,
        valuation: valuation.clone(),
    };

    let cold = session.explain(&request).expect("explain serves");
    println!("\n  cold explain() (compiles, then reports where the time went):");
    println!("    {}", cold.to_json());
    let warm = session.explain(&request).expect("explain serves warm");
    println!("  warm explain() (every cache layer resident):");
    println!("    {}", warm.to_json());

    let batch: Vec<ProbabilityRequest> = (0..8).map(|_| request.clone()).collect();
    assert!(session
        .batch_probability_f64(&batch)
        .iter()
        .all(|r| r.is_ok()));

    println!("\n  flight recorder (slowest retained requests):");
    for slow in session.slow_requests() {
        println!(
            "    {:>15} tier={:<11} {:>10.3}ms trace={} ({} spans kept)",
            slow.kind,
            slow.tier.as_str(),
            slow.duration_ns as f64 / 1e6,
            slow.trace,
            slow.spans.len()
        );
    }

    let events = telemetry.drain_events();
    let rendered = to_chrome_trace(&events);
    println!(
        "\n  Perfetto export: {} span events, {} bytes of trace_events JSON \
         (open in ui.perfetto.dev); head:",
        events.len(),
        rendered.len()
    );
    let head: String = rendered.chars().take(160).collect();
    println!("    {head}...");
}
