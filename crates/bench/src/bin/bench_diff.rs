//! Perf-regression gate: compares two bench baseline JSON files
//! (`BENCH_pr*.json`) and fails when a named headline number regressed.
//!
//! Usage:
//!
//! ```text
//! bench_diff <old.json> <new.json> [--limit=<percent>] [dotted.path ...]
//! ```
//!
//! Each `dotted.path` names a number in both documents (e.g.
//! `telemetry_overhead_ms.exact_batch_16.instrumented`); with no explicit
//! paths the default headline rows below are compared. The tool exits
//! nonzero when any compared number grew by more than the limit (default
//! 25%, chosen well above the single-core container's ~5% run-to-run
//! noise) or when a named path is missing from either file — a renamed or
//! dropped headline row must update the gate, not silently pass it.
//!
//! The baseline files carry floats, which the telemetry crate's
//! integer-only JSON parser deliberately rejects — so this binary brings
//! its own minimal float-tolerant reader (std-only, like everything else
//! in the workspace).

use std::process::ExitCode;

/// Default headline rows: the instrumented serving/compile timings the
/// telemetry acceptance bars are stated against.
const DEFAULT_PATHS: [&str; 3] = [
    "telemetry_overhead_ms.exact_batch_16.instrumented",
    "telemetry_overhead_ms.float_batch_16.instrumented",
    "telemetry_overhead_ms.cold_compile_50.instrumented",
];

/// Regression limit (percent growth of a headline number) applied unless
/// `--limit=` overrides it.
const DEFAULT_LIMIT_PERCENT: f64 = 25.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&str> = Vec::new();
    let mut paths: Vec<&str> = Vec::new();
    let mut limit = DEFAULT_LIMIT_PERCENT;
    for arg in &args {
        if let Some(value) = arg.strip_prefix("--limit=") {
            match value.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 => limit = v,
                _ => {
                    eprintln!("bench_diff: invalid --limit value {value:?}");
                    return ExitCode::from(2);
                }
            }
        } else if files.len() < 2 {
            files.push(arg);
        } else {
            paths.push(arg);
        }
    }
    if files.len() != 2 {
        eprintln!("usage: bench_diff <old.json> <new.json> [--limit=<percent>] [dotted.path ...]");
        return ExitCode::from(2);
    }
    if paths.is_empty() {
        paths = DEFAULT_PATHS.to_vec();
    }
    let read = |path: &str| -> Option<Value> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_diff: cannot read {path}: {e}");
                return None;
            }
        };
        match parse(&text) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("bench_diff: {path}: {e}");
                None
            }
        }
    };
    let (Some(old), Some(new)) = (read(files[0]), read(files[1])) else {
        return ExitCode::from(2);
    };
    match diff(&old, &new, &paths, limit) {
        Ok(report) => {
            print!("{report}");
            println!(
                "bench_diff: all {} headline rows within {limit}%",
                paths.len()
            );
            ExitCode::SUCCESS
        }
        Err(failures) => {
            eprint!("{failures}");
            ExitCode::FAILURE
        }
    }
}

/// Compares `paths` between the two documents. `Ok` carries the printable
/// per-row report; `Err` carries the failure report (missing paths or
/// regressions past `limit_percent`).
fn diff(old: &Value, new: &Value, paths: &[&str], limit_percent: f64) -> Result<String, String> {
    let mut report = String::new();
    let mut failures = String::new();
    for path in paths {
        let (old_v, new_v) = (lookup(old, path), lookup(new, path));
        let (Some(old_v), Some(new_v)) = (old_v, new_v) else {
            failures.push_str(&format!(
                "bench_diff: path {path:?} missing or non-numeric in {} file\n",
                if lookup(old, path).is_none() {
                    "old"
                } else {
                    "new"
                }
            ));
            continue;
        };
        let delta_percent = if old_v == 0.0 {
            if new_v == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (new_v - old_v) / old_v * 100.0
        };
        report.push_str(&format!(
            "  {path}: {old_v} -> {new_v} ({delta_percent:+.1}%)\n"
        ));
        if delta_percent > limit_percent {
            failures.push_str(&format!(
                "bench_diff: REGRESSION {path}: {old_v} -> {new_v} \
                 ({delta_percent:+.1}% > {limit_percent}%)\n"
            ));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}{failures}"))
    }
}

/// Resolves a dotted path to a number inside nested objects.
fn lookup(value: &Value, path: &str) -> Option<f64> {
    let mut cursor = value;
    for key in path.split('.') {
        cursor = match cursor {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)?,
            _ => return None,
        };
    }
    match cursor {
        Value::Number(n) => Some(*n),
        _ => None,
    }
}

/// Minimal JSON value: just what the baseline files need.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Parses one JSON document (float-tolerant, trailing whitespace allowed).
fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                        // Surrogates are absent from the baseline files;
                        // map unpaired ones to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_floats_strings_and_nesting() {
        let doc =
            parse(r#"{"a": {"b": [1, 2.5, -3e-2]}, "s": "x\"y\n", "t": true, "n": null}"#).unwrap();
        assert_eq!(lookup(&doc, "a.b"), None, "arrays are not numbers");
        match lookup(&doc, "a") {
            None => {}
            Some(v) => panic!("object resolved as number {v}"),
        }
        let Value::Object(fields) = &doc else {
            panic!("top level must be an object")
        };
        assert_eq!(fields[1].0, "s");
        assert_eq!(fields[1].1, Value::String("x\"y\n".to_string()));
        let Value::Object(a) = &fields[0].1 else {
            panic!()
        };
        assert_eq!(
            a[0].1,
            Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.5),
                Value::Number(-0.03)
            ])
        );
    }

    #[test]
    fn parses_the_checked_in_baseline() {
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json"))
                .unwrap();
        let doc = parse(&text).unwrap();
        for path in DEFAULT_PATHS {
            assert!(
                lookup(&doc, path).is_some(),
                "headline path {path:?} must resolve in BENCH_pr7.json"
            );
        }
        assert_eq!(
            lookup(&doc, "telemetry_overhead_ms.exact_batch_16.noop"),
            Some(810.2)
        );
    }

    fn baseline(values: [f64; 2]) -> Value {
        Value::Object(vec![(
            "rows".to_string(),
            Value::Object(vec![
                ("fast".to_string(), Value::Number(values[0])),
                ("slow".to_string(), Value::Number(values[1])),
            ]),
        )])
    }

    #[test]
    fn accepts_improvements_and_noise_within_limit() {
        let old = baseline([100.0, 10.0]);
        let new = baseline([110.0, 7.5]);
        let report = diff(&old, &new, &["rows.fast", "rows.slow"], 25.0).unwrap();
        assert!(report.contains("rows.fast: 100 -> 110 (+10.0%)"));
        assert!(report.contains("rows.slow: 10 -> 7.5 (-25.0%)"));
    }

    #[test]
    fn rejects_regressions_past_the_limit() {
        let old = baseline([100.0, 10.0]);
        let new = baseline([130.0, 10.0]);
        let failures = diff(&old, &new, &["rows.fast", "rows.slow"], 25.0).unwrap_err();
        assert!(failures.contains("REGRESSION rows.fast"));
        assert!(failures.contains("+30.0% > 25%"));
    }

    #[test]
    fn rejects_missing_paths() {
        let old = baseline([100.0, 10.0]);
        let new = baseline([100.0, 10.0]);
        let failures = diff(&old, &new, &["rows.gone"], 25.0).unwrap_err();
        assert!(failures.contains("missing or non-numeric"));
    }

    #[test]
    fn exact_boundary_is_not_a_regression() {
        let old = baseline([100.0, 10.0]);
        let new = baseline([125.0, 10.0]);
        assert!(diff(&old, &new, &["rows.fast"], 25.0).is_ok());
    }
}
