//! Theorem 4.2: probability evaluation is ra-linear on bounded treewidth
//! (experiment D-4.2a) and recovers #matchings of 3-regular planar graphs
//! through q_p (experiment D-4.2b).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage_graph::generators;
use treelineage_hardness as hardness;

fn bench_probability_on_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("d42a_probability_bounded_treewidth");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let (sig, inst) = common::chain_instance(n);
        let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
        let valuation = ProbabilityValuation::all_one_half(&inst);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                ProbabilityEvaluator::new(&inst, &valuation)
                    .query_probability(&q)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_matching_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("d42b_matching_counting_reduction");
    group.sample_size(10);
    for rungs in [3usize, 4, 5] {
        let graph = generators::circular_ladder_graph(rungs);
        group.bench_with_input(BenchmarkId::from_parameter(rungs), &rungs, |b, _| {
            b.iter(|| {
                let result = hardness::matching_reduction(&graph);
                assert_eq!(
                    result.matchings_from_probability.to_decimal_string(),
                    result.matchings_direct.to_decimal_string()
                );
                result.matchings_direct.to_decimal_string()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_probability_on_chains,
    bench_matching_reduction
);
criterion_main!(benches);
