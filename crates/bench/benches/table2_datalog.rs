//! Table 2, "positive relational algebra" and "Datalog" rows
//! (experiments T2-U7, T2-U8, T2-L4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage_datalog::{evaluate_datalog, evaluate_ra, DatalogProgram, RaExpression};
use treelineage_graph::generators;
use treelineage_instance::{encodings, Signature};

fn bench_ra_and_datalog(c: &mut Criterion) {
    let sig = Signature::builder().relation("E", 2).build();
    let e = sig.relation_by_name("E").unwrap();

    let mut group = c.benchmark_group("t2u7_positive_ra_formula");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let inst = encodings::graph_instance(&generators::path_graph(n), &sig, e);
        let expr = RaExpression::Project {
            input: Box::new(RaExpression::Join {
                left: Box::new(RaExpression::Relation(e)),
                right: Box::new(RaExpression::Relation(e)),
                on: vec![(1, 0)],
            }),
            columns: vec![0, 3],
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| evaluate_ra(&expr, &inst).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("t2u8_datalog_provenance_circuit");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let inst = encodings::graph_instance(&generators::path_graph(n), &sig, e);
        let program = DatalogProgram::transitive_closure(e);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| evaluate_datalog(&program, &inst).circuit.size())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ra_and_datalog);
criterion_main!(benches);
