//! PR 4 encoding-pipeline bench: match enumeration vs the automaton
//! pipeline (recorded in `BENCH_pr4.json`).
//!
//! Both compile routes produce the same lineage function and are driven by
//! the same *known* decomposition of the family (the treewidth-constructible
//! setting of the paper), so the timed difference is purely the compilation
//! strategy:
//!
//! * `match_enum_compile` — the match-enumeration route shared by the
//!   `LegacyObdd` / `SharedDd` / `StructuredDnnf` backends: enumerate all
//!   query matches, build the monotone lineage circuit, compile it into the
//!   shared dd engine. On the star family the match count grows
//!   quadratically with the instance, so this path falls off a cliff — it
//!   is benched only below `enumeration_cliff`.
//! * `automaton_compile` — `LineageBackend::Automaton` (Section 6 made
//!   constructive): tree-encode the instance, compile the query to a
//!   deterministic tree automaton on the encoding alphabet, extract the
//!   provenance d-SDNNF. No match is ever materialized: per-instance work
//!   is linear in the instance, which is what lets it compile lineages at
//!   sizes 10× and beyond past the enumeration cliff in the same
//!   wall-clock budget (star: automaton at n = 4000 is faster than match
//!   enumeration at n = 400).
//! * `automaton_eval_only` / `automaton_count_only` — one pass over the
//!   pre-compiled provenance d-SDNNF (the many-valuations regime): the
//!   exact-probability pass (rational arithmetic, whose bignum cost grows
//!   with the instance — benched below the cliff) and the integer
//!   model-counting pass (benched everywhere).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use treelineage::prelude::*;
use treelineage_bench::dyadic_prob;

/// A star join of treewidth 1: `n/2` edges into the center and `n/2` out of
/// it, so `S(x, y), S(y, z), x != z` has ~`n²/4` matches through the center.
fn star_instance(sig: &Signature, n: usize) -> Instance {
    let mut inst = Instance::new(sig.clone());
    for leaf in 1..=n as u64 {
        if leaf % 2 == 0 {
            inst.add_fact_by_name("S", &[0, leaf]);
        } else {
            inst.add_fact_by_name("S", &[leaf, 0]);
        }
    }
    inst
}

/// The star's known width-1 path decomposition: one `{center, leaf}` bag
/// per leaf. (Vertex ids equal element values: the domain is `0..=n`.)
fn star_decomposition(n: usize) -> TreeDecomposition {
    let bags: Vec<BTreeSet<usize>> = (1..=n)
        .map(|leaf| [0usize, leaf].into_iter().collect())
        .collect();
    TreeDecomposition::path_from_bags(bags)
}

fn chain_instance(sig: &Signature, n: usize) -> Instance {
    let mut inst = Instance::new(sig.clone());
    for i in 0..n as u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    inst
}

/// The chain's known width-1 path decomposition: bags `{i, i+1}`.
fn chain_decomposition(n: usize) -> TreeDecomposition {
    let bags: Vec<BTreeSet<usize>> = (0..n).map(|i| [i, i + 1].into_iter().collect()).collect();
    TreeDecomposition::path_from_bags(bags)
}

fn bench_family(
    c: &mut Criterion,
    group_name: &str,
    query: &UnionOfConjunctiveQueries,
    cases: Vec<(usize, Instance, TreeDecomposition)>,
    enumeration_cliff: usize,
    eval_cap: usize,
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(3);
    for (n, inst, td) in &cases {
        // The enumeration route is only run up to its cliff; past it the
        // quadratic match count makes the variant minutes-slow, which is
        // the point.
        if *n <= enumeration_cliff {
            group.bench_with_input(BenchmarkId::new("match_enum_compile", n), n, |b, _| {
                b.iter(|| {
                    let builder = LineageBuilder::new(query, inst)
                        .unwrap()
                        .with_decomposition(td.clone())
                        .unwrap();
                    builder.dd()
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("automaton_compile", n), n, |b, _| {
            b.iter(|| {
                let builder = LineageBuilder::new(query, inst)
                    .unwrap()
                    .with_decomposition(td.clone())
                    .unwrap();
                builder.automaton_lineage().unwrap()
            })
        });
        let lineage = LineageBuilder::new(query, inst)
            .unwrap()
            .with_decomposition(td.clone())
            .unwrap()
            .automaton_lineage()
            .unwrap();
        // The exact-probability pass is capped separately: its bignum cost
        // grows with the fact count regardless of compilation strategy.
        if *n <= eval_cap {
            group.bench_with_input(BenchmarkId::new("automaton_eval_only", n), n, |b, _| {
                b.iter(|| lineage.probability(&dyadic_prob))
            });
        }
        group.bench_with_input(BenchmarkId::new("automaton_count_only", n), n, |b, _| {
            b.iter(|| lineage.model_count())
        });
    }
    group.finish();
}

fn bench_star(c: &mut Criterion) {
    let sig = Signature::builder().relation("S", 2).build();
    let q = parse_query(&sig, "S(x, y), S(y, z), x != z").unwrap();
    let cases = [400usize, 4000]
        .into_iter()
        .map(|n| (n, star_instance(&sig, n), star_decomposition(n)))
        .collect();
    bench_family(c, "pr4_encoding_pipeline_star", &q, cases, 400, 400);
}

fn bench_chain(c: &mut Criterion) {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    let cases = [100usize, 1000]
        .into_iter()
        .map(|n| (n, chain_instance(&sig, n), chain_decomposition(n)))
        .collect();
    bench_family(c, "pr4_encoding_pipeline_chain", &q, cases, 1000, 100);
}

criterion_group!(benches, bench_star, bench_chain);
criterion_main!(benches);
