//! Table 2 (upper bounds): lineage circuit / OBDD / d-DNNF construction on
//! bounded-pathwidth and bounded-treewidth instances (experiments T2-U1..U5).
//!
//! The OBDD groups compile through the shared `treelineage-dd` engine with a
//! persistent manager per size, so iterations after the first exercise the
//! op-cache hit path (the steady state of a long-running service).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage_instance::encodings;

fn bench_bounded_pathwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2u1_bounded_pathwidth_obdd");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let (sig, inst) = common::chain_instance(n);
        let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        let mut manager = builder.dd_manager();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let root = builder.compile_dd(&mut manager);
                assert!(manager.width(root) <= 8);
                manager.size(root)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("t2u2_bounded_pathwidth_circuit");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let (sig, inst) = common::chain_instance(n);
        let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| LineageBuilder::new(&q, &inst).unwrap().circuit().size())
        });
    }
    group.finish();
}

fn bench_bounded_treewidth(c: &mut Criterion) {
    let sig = Signature::builder()
        .relation("S", 2)
        .relation("R", 2)
        .build();
    let q = parse_query(&sig, "S(x, y), S(y, z), x != z").unwrap();

    let mut group = c.benchmark_group("t2u3_bounded_treewidth_obdd");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let inst = encodings::random_treelike_instance(&sig, n, 2, 7);
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        let mut manager = builder.dd_manager();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let root = builder.compile_dd(&mut manager);
                manager.size(root)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("t2u4_bounded_treewidth_circuit");
    group.sample_size(10);
    for n in [40usize, 80, 160] {
        let inst = encodings::random_treelike_instance(&sig, n, 2, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| LineageBuilder::new(&q, &inst).unwrap().circuit().size())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("t2u5_bounded_treewidth_ddnnf");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let inst = encodings::random_treelike_instance(&sig, n, 2, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| LineageBuilder::new(&q, &inst).unwrap().ddnnf().size())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounded_pathwidth, bench_bounded_treewidth);
criterion_main!(benches);
