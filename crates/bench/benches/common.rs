//! Shared helpers for the Criterion benches (included via `mod common`).
#![allow(dead_code)]

use treelineage::prelude::*;

/// The chain instance R(i), S(i, i+1), T(i+1) for i < n (pathwidth 1).
pub fn chain_instance(n: usize) -> (Signature, Instance) {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let mut inst = Instance::new(sig.clone());
    for i in 0..n as u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    (sig, inst)
}
