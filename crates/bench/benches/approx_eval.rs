//! PR 6 approximate-evaluation bench: the certified f64 interval pass and
//! the float-first serving policy against the exact-rational baseline
//! (recorded in `BENCH_pr6.json`).
//!
//! The workload is the `engine_scaling` bench's **eval-bound** shape — the
//! one shape where PR 5's session could not help, because the exact
//! big-rational probability pass is inherently per-request: a chain of
//! n = 50 links (150 facts) under `R(x), S(x, y), T(y)`, 16 requests with
//! distinct mixed-dyadic weight vectors. PR 5 recorded 846 ms (naive) /
//! 802 ms (warm session) for the batch; the float pass runs the same
//! gate-for-gate recurrence in interval arithmetic, so its speedup here is
//! the whole point of the PR (target: ≥ 20×).
//!
//! Rows:
//!
//! * `exact_probability_batch` — warm exact session, `batch_probability`
//!   (the PR 5 baseline, re-measured).
//! * `float_probability_batch` — warm FloatFirst session,
//!   `batch_probability_f64`: certified `(midpoint, interval)` per request.
//! * `float_threshold_batch` — `batch_threshold` at a far-away threshold:
//!   every decision resolves in the float tier, no exact fallback.
//! * `karp_luby_m3` — the Monte-Carlo fallback at paper-grade
//!   `(ε, δ) = (0.01, 0.01)` on a 3-clause DNF (the Karp–Luby–Madras
//!   sample bound `⌈4m·ln(2/δ)/ε²⌉` ≈ 636k worlds): the price of an answer
//!   when the compile budget is blown.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage::{karp_luby_probability, ProbabilityRequest, ThresholdRequest};

const BATCH: usize = 16;

fn chain_sig() -> Signature {
    Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build()
}

fn chain(n: usize) -> Instance {
    let mut inst = Instance::new(chain_sig());
    for i in 0..n as u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    inst
}

fn benches(c: &mut Criterion) {
    let sig = chain_sig();
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    let inst = chain(50);
    let valuation_of = |k: usize| {
        ProbabilityValuation::from_probabilities(
            &inst,
            (0..inst.fact_count())
                .map(|v| Rational::from_ratio_u64(1, 1 << ((v + k) % 3 + 1)))
                .collect(),
        )
    };

    let mut group = c.benchmark_group("approx_eval");
    group.sample_size(3);

    let mut exact = EvalSession::new(EngineConfig::default());
    let qid = exact.register_query(q.clone());
    let iid = exact.register_instance(inst.clone());
    let requests: Vec<ProbabilityRequest> = (0..BATCH)
        .map(|k| ProbabilityRequest {
            query: qid,
            instance: iid,
            valuation: valuation_of(k),
        })
        .collect();
    let _ = exact.batch_probability(&requests);
    group.bench_function(BenchmarkId::new("exact_probability_batch", BATCH), |b| {
        b.iter(|| exact.batch_probability(&requests))
    });

    let float_config = EngineConfig {
        float_first: true,
        ..EngineConfig::default()
    };
    let mut float = EvalSession::new(float_config);
    let fqid = float.register_query(q.clone());
    let fiid = float.register_instance(inst.clone());
    let float_requests: Vec<ProbabilityRequest> = (0..BATCH)
        .map(|k| ProbabilityRequest {
            query: fqid,
            instance: fiid,
            valuation: valuation_of(k),
        })
        .collect();
    let _ = float.batch_probability_f64(&float_requests);
    group.bench_function(BenchmarkId::new("float_probability_batch", BATCH), |b| {
        b.iter(|| float.batch_probability_f64(&float_requests))
    });

    // Far-away threshold: every request decides in the float tier.
    let threshold_requests: Vec<ThresholdRequest> = (0..BATCH)
        .map(|k| ThresholdRequest {
            query: fqid,
            instance: fiid,
            valuation: valuation_of(k),
            threshold: Rational::one_half(),
        })
        .collect();
    let _ = float.batch_threshold(&threshold_requests);
    group.bench_function(BenchmarkId::new("float_threshold_batch", BATCH), |b| {
        b.iter(|| float.batch_threshold(&threshold_requests))
    });

    // Monte-Carlo fallback: 3 DNF clauses at (0.01, 0.01) — the worst-case
    // price per answer when exact compilation is impossible.
    let mut kl_inst = Instance::new(sig.clone());
    for i in 0..3u64 {
        kl_inst.add_fact_by_name("R", &[i]);
        kl_inst.add_fact_by_name("S", &[i, i + 1]);
        kl_inst.add_fact_by_name("T", &[i + 1]);
    }
    let kl_valuation = ProbabilityValuation::uniform(&kl_inst, Rational::from_ratio_u64(1, 3));
    group.bench_function(BenchmarkId::new("karp_luby_m3", "eps0.01"), |b| {
        b.iter(|| karp_luby_probability(&q, &kl_inst, &kl_valuation, 0.01, 0.01, 42))
    });

    group.finish();
}

criterion_group!(approx_eval, benches);
criterion_main!(approx_eval);
