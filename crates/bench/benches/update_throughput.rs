//! PR 10 update-throughput bench: single-fact maintenance against cold
//! recompilation (recorded in `BENCH_pr10.json`).
//!
//! Three instance shapes bracket the fragment-locality claim — a chain
//! (pathwidth 1, many fragments, an update touches a constant-size
//! neighbourhood), a star (one hub bag: every fact near the root), and a
//! 4×4 grid (the widest decomposition the exact pipeline serves
//! comfortably). On each shape, per iteration:
//!
//! * `structural_update_reeval` — retract the last fact, re-answer the
//!   query, insert the fact back, re-answer again: two fragment-level
//!   dirty recompiles plus two evaluations on a warm [`EvalSession`].
//!   The recompile replays every content-unchanged fragment from the
//!   invalidated artifact's library, so only the update's neighbourhood
//!   is recompiled (byte-identically to cold — `tests/update_differential.rs`
//!   pins that).
//! * `set_probability_reeval` — the cheap tier: flip one fact's
//!   probability and re-answer. No structural invalidation at all; the
//!   lineage stays cached and only the evaluation pass runs.
//! * `cold_reeval` — the comparator: a from-scratch
//!   [`EvalSession::cold_lineage`] compile of the same pair (fresh
//!   encoding, every fragment recompiled) plus one evaluation pass.
//!
//! The exact big-rational evaluation dominates wall-clock on these sizes
//! (compare `telemetry_overhead`'s rows), so the interesting margin is
//! `structural_update_reeval ≈ 2 × cold_reeval` minus the fragments the
//! library replays — see the per-shape notes in `BENCH_pr10.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage::ProbabilityRequest;
use treelineage_instance::encodings;

const CHAIN: usize = 24;
const STAR: usize = 24;
const GRID: usize = 4;

fn chain_shape() -> (Instance, UnionOfConjunctiveQueries) {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let mut inst = Instance::new(sig.clone());
    for i in 0..CHAIN as u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    (inst, q)
}

fn star_shape() -> (Instance, UnionOfConjunctiveQueries) {
    let sig = Signature::builder()
        .relation("S", 2)
        .relation("L", 1)
        .build();
    let mut inst = Instance::new(sig.clone());
    for i in 1..=STAR as u64 {
        inst.add_fact_by_name("S", &[0, i]);
        inst.add_fact_by_name("L", &[i]);
    }
    let q = parse_query(&sig, "S(x, y), L(y)").unwrap();
    (inst, q)
}

fn grid_shape() -> (Instance, UnionOfConjunctiveQueries) {
    let sig = Signature::builder().relation("S", 2).build();
    let s = sig.relation_by_name("S").unwrap();
    let inst = encodings::grid_instance(&sig, s, GRID, GRID);
    let q = parse_query(&sig, "S(x, y)").unwrap();
    (inst, q)
}

fn benches(c: &mut Criterion) {
    let shapes: [(&str, usize, (Instance, UnionOfConjunctiveQueries)); 3] = [
        ("chain", CHAIN, chain_shape()),
        ("star", STAR, star_shape()),
        ("grid", GRID * GRID, grid_shape()),
    ];

    let mut group = c.benchmark_group("update_throughput");
    group.sample_size(3);

    for (shape, size, (inst, q)) in &shapes {
        let mut session =
            EvalSession::with_backend(EngineConfig::with_threads(2), SessionBackend::Automaton);
        let qid = session.register_query(q.clone());
        let iid = session.register_instance(inst.clone());
        let answer = |session: &EvalSession| {
            session.batch_probability(&[ProbabilityRequest {
                query: qid,
                instance: iid,
                valuation: session.valuation(iid).clone(),
            }])[0]
                .clone()
                .unwrap()
        };
        // Warm every cache layer so the rows price maintenance, not the
        // cold start.
        let _ = answer(&session);

        let last = FactId(inst.fact_count() - 1);
        let last_p = session.valuation(iid).probability(last).clone();
        group.bench_function(BenchmarkId::new("structural_update_reeval", *shape), |b| {
            b.iter(|| {
                session.retract_fact(iid, last).unwrap();
                let without = answer(&session);
                session
                    .insert_fact(iid, inst.fact(last).clone(), last_p.clone())
                    .unwrap();
                let with = answer(&session);
                (without, with)
            })
        });

        let mut flip = false;
        group.bench_function(BenchmarkId::new("set_probability_reeval", *shape), |b| {
            b.iter(|| {
                flip = !flip;
                let p = if flip {
                    Rational::from_ratio_u64(1, 3)
                } else {
                    Rational::from_ratio_u64(1, 4)
                };
                session.set_probability(iid, FactId(0), p).unwrap();
                answer(&session)
            })
        });

        group.bench_function(BenchmarkId::new("cold_reeval", *shape), |b| {
            b.iter(|| {
                let artifact = session.cold_lineage(qid, iid).unwrap();
                artifact.probability(
                    &|v| session.valuation(iid).probability(FactId(v)).clone(),
                    2,
                )
            })
        });
        let _ = size;
    }
    group.finish();
}

criterion_group!(update_benches, benches);
criterion_main!(update_benches);
