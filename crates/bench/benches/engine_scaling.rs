//! PR 5 engine-scaling bench: the parallel subtree engine and the batched
//! `EvalSession` against the sequential / per-request baselines (recorded
//! in `BENCH_pr5.json`).
//!
//! Three question groups, on the star and grid families of the encoding
//! pipeline bench (known decompositions, so the timed work is the engine):
//!
//! * `compile/t{N}` — end-to-end automaton-backend lineage compile
//!   (encode → query automaton → provenance d-SDNNF) through
//!   `EngineConfig::with_threads(N)`. `t1` is the sequential baseline the
//!   bit-identity contract is pinned against.
//! * `eval/t{N}` — the integer model-counting pass over the pre-compiled
//!   artifact, fragment-parallel at N threads.
//! * `session_throughput/*` — serving throughput through one warm
//!   `EvalSession` vs the naive pipeline that re-encodes and recompiles
//!   per request, in two workload shapes (compile-bound model counts,
//!   eval-bound probabilities — see `bench_session`). The compile-bound
//!   speedup comes from deduplication, not cores, so it holds on any
//!   machine.
//!
//! Thread-scaling results are hardware-dependent: on a single-core
//! container the `t{N}` variants measure scheduler overhead (expect ≈1×),
//! while on a multi-core host the disjoint-subtree fan-out applies.
//! `TREELINEAGE_THREADS` (default 8) caps the largest thread count benched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use treelineage::prelude::*;
use treelineage_instance::encodings;

fn star_instance(sig: &Signature, n: usize) -> Instance {
    let mut inst = Instance::new(sig.clone());
    for leaf in 1..=n as u64 {
        if leaf % 2 == 0 {
            inst.add_fact_by_name("S", &[0, leaf]);
        } else {
            inst.add_fact_by_name("S", &[leaf, 0]);
        }
    }
    inst
}

fn star_decomposition(n: usize) -> TreeDecomposition {
    let bags: Vec<BTreeSet<usize>> = (1..=n)
        .map(|leaf| [0usize, leaf].into_iter().collect())
        .collect();
    TreeDecomposition::path_from_bags(bags)
}

fn thread_counts() -> Vec<usize> {
    let cap: usize = std::env::var("TREELINEAGE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= cap.max(1))
        .collect()
}

fn bench_family(
    c: &mut Criterion,
    group_name: &str,
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
    decomposition: Option<TreeDecomposition>,
    base_config: EngineConfig,
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(3);
    let builder = |config: EngineConfig| {
        let mut b = LineageBuilder::new(query, instance)
            .unwrap()
            .with_engine_config(config);
        if let Some(td) = &decomposition {
            b = b.with_decomposition(td.clone()).unwrap();
        }
        b
    };
    for &threads in &thread_counts() {
        let config = EngineConfig {
            threads,
            ..base_config.clone()
        };
        group.bench_with_input(
            BenchmarkId::new("compile", format!("t{threads}")),
            &threads,
            |b, _| b.iter(|| builder(config.clone()).automaton_lineage().unwrap()),
        );
        let lineage = builder(config).automaton_lineage().unwrap();
        group.bench_with_input(
            BenchmarkId::new("eval", format!("t{threads}")),
            &threads,
            |b, _| b.iter(|| lineage.model_count()),
        );
    }
    group.finish();
}

/// Serving throughput: one warm session vs the naive per-request pipeline,
/// in the two workload shapes that bracket real serving traffic.
///
/// * **Compile-bound** (`counts_*`): repeated model-count requests for the
///   same (query, instance). The naive pipeline re-runs
///   encode → query-machine → d-SDNNF per request; the warm session
///   answers from its lineage cache and deduplicates the batch down to one
///   cheap integer pass. This is the "millions of users asking the same
///   thing" shape, and the speedup is the whole per-request compile —
///   hardware-independent.
/// * **Eval-bound** (`probability_*`): probability requests with distinct
///   per-request weight vectors. Exact rational arithmetic makes the
///   evaluation pass itself the dominant cost at this size, and that pass
///   is inherently per-request — the session can only amortize the
///   compile, so the gap here is honest and small. (Kept deliberately: a
///   serving layer that only looks good on cache-hit workloads would be
///   overselling itself.)
fn bench_session(c: &mut Criterion) {
    const BATCH: usize = 16;
    let mut group = c.benchmark_group("session_throughput");
    group.sample_size(3);

    // Compile-bound: the star family, where compile ≈ 10× the count pass.
    let star_sig = Signature::builder().relation("S", 2).build();
    let star_q = parse_query(&star_sig, "S(x, y), S(y, z), x != z").unwrap();
    let star = star_instance(&star_sig, 1000);
    let star_td = star_decomposition(1000);
    group.bench_function(BenchmarkId::new("counts_naive_per_request", BATCH), |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let lineage = LineageBuilder::new(&star_q, &star)
                    .unwrap()
                    .with_decomposition(star_td.clone())
                    .unwrap()
                    .automaton_lineage()
                    .unwrap();
                let _ = lineage.model_count();
            }
        })
    });
    group.bench_function(BenchmarkId::new("counts_eval_session_batch", BATCH), |b| {
        let mut session = EvalSession::new(EngineConfig::default());
        let qid = session.register_query(star_q.clone());
        let iid = session
            .register_instance_with_decomposition(star.clone(), star_td.clone())
            .unwrap();
        let requests: Vec<_> = (0..BATCH).map(|_| (qid, iid)).collect();
        // Warm the caches once: steady-state serving is the question.
        let _ = session.batch_model_count(&requests);
        b.iter(|| session.batch_model_count(&requests))
    });

    // Eval-bound: a chain with per-request weight vectors (numerator-1
    // dyadics keep the rational arithmetic as cheap as exactness allows).
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    let mut inst = Instance::new(sig.clone());
    for i in 0..50u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    let valuation_of = |k: usize| {
        ProbabilityValuation::from_probabilities(
            &inst,
            (0..inst.fact_count())
                .map(|v| Rational::from_ratio_u64(1, 1 << ((v + k) % 3 + 1)))
                .collect(),
        )
    };
    group.bench_function(
        BenchmarkId::new("probability_naive_per_request", BATCH),
        |b| {
            b.iter(|| {
                for k in 0..BATCH {
                    let valuation = valuation_of(k);
                    let lineage = LineageBuilder::new(&q, &inst)
                        .unwrap()
                        .automaton_lineage()
                        .unwrap();
                    let _ = lineage.probability(&|v| valuation.probability(FactId(v)).clone());
                }
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("probability_eval_session_batch", BATCH),
        |b| {
            let mut session = EvalSession::new(EngineConfig::default());
            let qid = session.register_query(q.clone());
            let iid = session.register_instance(inst.clone());
            let requests: Vec<treelineage::ProbabilityRequest> = (0..BATCH)
                .map(|k| treelineage::ProbabilityRequest {
                    query: qid,
                    instance: iid,
                    valuation: valuation_of(k),
                })
                .collect();
            let _ = session.batch_probability(&requests);
            b.iter(|| session.batch_probability(&requests))
        },
    );
    group.finish();
}

fn benches(c: &mut Criterion) {
    let star_sig = Signature::builder().relation("S", 2).build();
    let star_q = parse_query(&star_sig, "S(x, y), S(y, z), x != z").unwrap();
    for n in [1000usize, 4000] {
        bench_family(
            c,
            &format!("engine_star_{n}"),
            &star_q,
            &star_instance(&star_sig, n),
            Some(star_decomposition(n)),
            EngineConfig::default(),
        );
    }

    let grid_sig = Signature::builder().relation("S", 2).build();
    let s = grid_sig.relation_by_name("S").unwrap();
    let grid_q = parse_query(&grid_sig, "S(x, y), S(y, z), x != z").unwrap();
    let grid = encodings::grid_instance(&grid_sig, s, 3, 60);
    // The grid family saturates at 4187 deterministic states — just past
    // the default budget — so the bench raises it via the engine knob.
    let grid_config = EngineConfig {
        state_budget: 16_384,
        ..EngineConfig::default()
    };
    bench_family(c, "engine_grid_3x60", &grid_q, &grid, None, grid_config);

    bench_session(c);
}

criterion_group!(engine_scaling, benches);
criterion_main!(engine_scaling);
