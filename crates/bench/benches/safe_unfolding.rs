//! Theorem 9.7: unfolding ranked instances for inversion-free UCQs
//! (experiment D-9.7) — construction time and resulting tree-depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage_safe as safe;

fn bench_unfolding(c: &mut Criterion) {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .build();
    let q = parse_query(&sig, "R(x), S(x, y)").unwrap();
    let mut group = c.benchmark_group("d97_unfolding");
    group.sample_size(10);
    for n in [20u64, 40, 80] {
        let mut inst = Instance::new(sig.clone());
        for a in 1..=n {
            inst.add_fact_by_name("R", &[a]);
            for c in 1..=4u64 {
                inst.add_fact_by_name("S", &[a, n + c]);
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let unfolding = safe::unfold_for_query(&q, &inst).unwrap();
                assert!(unfolding.tree_depth <= 2);
                unfolding.instance.fact_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unfolding);
criterion_main!(benches);
