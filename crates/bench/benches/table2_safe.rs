//! Table 2, "inversion-free UCQ" row and Theorem 9.7 (experiment T2-U6):
//! constant-width OBDDs for inversion-free UCQs via unfolding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage_safe as safe;

fn star_join_instance(sig: &Signature, n: u64) -> Instance {
    let mut inst = Instance::new(sig.clone());
    for a in 1..=n {
        inst.add_fact_by_name("R", &[a]);
        for c in 1..=4u64 {
            inst.add_fact_by_name("S", &[a, n + c]);
        }
    }
    inst
}

fn bench_inversion_free(c: &mut Criterion) {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .build();
    let q = parse_query(&sig, "R(x), S(x, y)").unwrap();

    let mut group = c.benchmark_group("t2u6_inversion_free_unfold_and_obdd");
    group.sample_size(10);
    for n in [10u64, 20, 40] {
        let inst = star_join_instance(&sig, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let unfolding = safe::unfold_for_query(&q, &inst).unwrap();
                let obdd = LineageBuilder::new(&q, &unfolding.instance).unwrap().obdd();
                assert!(unfolding.tree_depth <= 2);
                obdd.width()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inversion_free);
criterion_main!(benches);
