//! PR 7 telemetry-overhead bench: the instrumented pipeline against the
//! default no-op sink (recorded in `BENCH_pr7.json`).
//!
//! The workload is the §E-7 serving shape re-used by the PR 6 bench: a
//! chain of n = 50 links (150 facts) under `R(x), S(x, y), T(y)`, served
//! from one warm `EvalSession` in a batch of 16. Two serving tiers bracket
//! the sensitivity:
//!
//! * `exact_batch_{noop,instrumented}` — `batch_probability`: the exact
//!   big-rational pass dominates (~tens of ms per request), so even a
//!   sloppy telemetry layer would vanish here. This row pins the headline
//!   "≤ 5% instrumented" acceptance on the shape earlier PRs recorded.
//! * `float_batch_{noop,instrumented}` — `batch_probability_f64` on a
//!   FloatFirst session: ~1000× cheaper per request, so per-request
//!   telemetry work (two map updates, one clock pair) is maximally
//!   visible. This is the adversarial row for the no-op claim.
//! * `cold_compile_{noop,instrumented}` — a cold `LineageBuilder`
//!   compile per iteration: the stage-span path (encode → query machine →
//!   d-SDNNF), where spans fire once per stage rather than per request.
//! * `snapshot_export` — `EvalSession::metrics()` plus both export
//!   encodings on the warm instrumented session: the cost of *reading*
//!   telemetry, which serving code pays only when scraped.
//!
//! The no-op rows double as the pre-PR baseline: the disabled handle
//! compiles to a `None` branch per call site, and `BENCH_pr7.json` records
//! them next to the PR 6 figures for the same shape to show the seam added
//! nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage::ProbabilityRequest;

const BATCH: usize = 16;
const CHAIN: usize = 50;

fn chain_sig() -> Signature {
    Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build()
}

fn chain(n: usize) -> Instance {
    let mut inst = Instance::new(chain_sig());
    for i in 0..n as u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    inst
}

fn config(telemetry: Telemetry) -> EngineConfig {
    EngineConfig {
        telemetry,
        ..EngineConfig::default()
    }
}

fn benches(c: &mut Criterion) {
    let sig = chain_sig();
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    let inst = chain(CHAIN);
    let valuation_of = |k: usize| {
        ProbabilityValuation::from_probabilities(
            &inst,
            (0..inst.fact_count())
                .map(|v| Rational::from_ratio_u64(1, 1 << ((v + k) % 3 + 1)))
                .collect(),
        )
    };

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(3);

    let variants = [
        ("noop", Telemetry::disabled()),
        ("instrumented", Telemetry::enabled()),
    ];

    for (label, telemetry) in &variants {
        let mut exact = EvalSession::new(config(telemetry.clone()));
        let qid = exact.register_query(q.clone());
        let iid = exact.register_instance(inst.clone());
        let requests: Vec<ProbabilityRequest> = (0..BATCH)
            .map(|k| ProbabilityRequest {
                query: qid,
                instance: iid,
                valuation: valuation_of(k),
            })
            .collect();
        let _ = exact.batch_probability(&requests);
        group.bench_function(
            BenchmarkId::new(format!("exact_batch_{label}"), BATCH),
            |b| b.iter(|| exact.batch_probability(&requests)),
        );

        let mut float =
            EvalSession::with_backend(config(telemetry.clone()), SessionBackend::FloatFirst);
        let qid = float.register_query(q.clone());
        let iid = float.register_instance(inst.clone());
        let requests: Vec<ProbabilityRequest> = (0..BATCH)
            .map(|k| ProbabilityRequest {
                query: qid,
                instance: iid,
                valuation: valuation_of(k),
            })
            .collect();
        let _ = float.batch_probability_f64(&requests);
        group.bench_function(
            BenchmarkId::new(format!("float_batch_{label}"), BATCH),
            |b| b.iter(|| float.batch_probability_f64(&requests)),
        );

        group.bench_function(
            BenchmarkId::new(format!("cold_compile_{label}"), CHAIN),
            |b| {
                b.iter(|| {
                    LineageBuilder::new(&q, &inst)
                        .unwrap()
                        .with_engine_config(config(telemetry.clone()))
                        .automaton_lineage()
                        .unwrap()
                })
            },
        );
    }

    // Reading telemetry: merge the registry with session/caches/dd stats and
    // encode both export formats. Priced on a warm instrumented session so
    // the snapshot has realistic cardinality.
    let mut session = EvalSession::new(config(Telemetry::enabled()));
    let qid = session.register_query(q.clone());
    let iid = session.register_instance(inst.clone());
    let requests: Vec<ProbabilityRequest> = (0..BATCH)
        .map(|k| ProbabilityRequest {
            query: qid,
            instance: iid,
            valuation: valuation_of(k),
        })
        .collect();
    let _ = session.batch_probability(&requests);
    group.bench_function(BenchmarkId::new("snapshot_export", "warm"), |b| {
        b.iter(|| {
            let snap = session.metrics();
            (snap.to_json_lines().len(), snap.to_prometheus().len())
        })
    });

    group.finish();
}

criterion_group!(benches_group, benches);
criterion_main!(benches_group);
