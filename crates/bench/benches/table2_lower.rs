//! Table 2 (lower bounds): circuit vs formula sizes for the threshold and
//! parity lineage families of Section 7 (experiments T2-L1..L3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage_circuit::{parity_circuit, parity_formula, threshold2_circuit, threshold2_formula};

fn bench_formula_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2l_threshold_and_parity");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let vars: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::new("threshold2_circuit", n), &n, |b, _| {
            b.iter(|| threshold2_circuit(&vars).size())
        });
        group.bench_with_input(BenchmarkId::new("threshold2_formula", n), &n, |b, _| {
            b.iter(|| threshold2_formula(&vars).leaf_size())
        });
        group.bench_with_input(BenchmarkId::new("parity_circuit", n), &n, |b, _| {
            b.iter(|| parity_circuit(&vars).size())
        });
        group.bench_with_input(BenchmarkId::new("parity_formula", n), &n, |b, _| {
            b.iter(|| parity_formula(&vars).leaf_size())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_formula_constructions);
criterion_main!(benches);
