//! PR 3 backend comparison: the three lineage backends head to head on the
//! same instances and queries (recorded in `BENCH_pr3.json`).
//!
//! Every variant computes the query probability end to end so the timed work
//! is comparable: `legacy_obdd` = per-diagram reduced OBDD compile + WMC
//! pass; `shared_dd` = shared engine compile (fresh manager) + memoized WMC
//! pass; `dsdnnf_compile_eval` = dd compile + d-DNNF export + smoothing +
//! one-pass evaluation (the full structured-backend pipeline);
//! `dsdnnf_eval_only` = the one-pass evaluation alone on a pre-compiled
//! d-SDNNF — the "linear in circuit size" claim of Theorem 6.11, and the
//! regime that matters when one lineage is evaluated under many valuations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage_instance::encodings;

fn chain_instance(sig: &Signature, n: usize) -> Instance {
    let mut inst = Instance::new(sig.clone());
    for i in 0..n as u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    inst
}

use treelineage_bench::dyadic_prob as prob;

fn bench_backends(
    c: &mut Criterion,
    group_name: &str,
    cases: Vec<(usize, UnionOfConjunctiveQueries, Instance)>,
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for (n, q, inst) in &cases {
        let builder = LineageBuilder::new(q, inst).unwrap();
        group.bench_with_input(BenchmarkId::new("legacy_obdd", n), n, |b, _| {
            b.iter(|| builder.obdd().probability(&prob))
        });
        group.bench_with_input(BenchmarkId::new("shared_dd", n), n, |b, _| {
            b.iter(|| {
                let (manager, root) = builder.dd();
                manager.probability(root, &prob)
            })
        });
        group.bench_with_input(BenchmarkId::new("dsdnnf_compile_eval", n), n, |b, _| {
            b.iter(|| builder.structured_dnnf().probability(&prob))
        });
        let structured = builder.structured_dnnf();
        group.bench_with_input(BenchmarkId::new("dsdnnf_eval_only", n), n, |b, _| {
            b.iter(|| structured.probability(&prob))
        });
        group.bench_with_input(BenchmarkId::new("dsdnnf_count_only", n), n, |b, _| {
            b.iter(|| structured.model_count())
        });
    }
    group.finish();
}

fn bench_chain(c: &mut Criterion) {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    let cases = [50usize, 100, 200]
        .into_iter()
        .map(|n| (n, q.clone(), chain_instance(&sig, n)))
        .collect();
    bench_backends(c, "pr3_backend_comparison_chain", cases);
}

fn bench_treelike(c: &mut Criterion) {
    let sig = Signature::builder()
        .relation("S", 2)
        .relation("R", 2)
        .build();
    let q = parse_query(&sig, "S(x, y), S(y, z), x != z").unwrap();
    let cases = [20usize, 40, 80]
        .into_iter()
        .map(|n| {
            (
                n,
                q.clone(),
                encodings::random_treelike_instance(&sig, n, 2, 7),
            )
        })
        .collect();
    bench_backends(c, "pr3_backend_comparison_treelike", cases);
}

criterion_group!(benches, bench_chain, bench_treelike);
criterion_main!(benches);
