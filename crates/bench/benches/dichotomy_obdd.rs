//! Theorem 8.1 / Lemma 8.2: OBDD width of the intricate query q_p blows up on
//! grids but stays constant on chains (experiments D-8.1, D-8.7b, D-8.9).
//!
//! The width measurements compile through the shared `treelineage-dd` engine
//! with one manager per family, created *outside* the timing loop: repeated
//! compilations of the same lineage hit the persistent if-then-else cache,
//! which is exactly the reuse pattern the engine is built for. The
//! `d81_engine_comparison` group times the legacy per-diagram
//! `circuit::obdd` construction against the shared engine on the same
//! family, head to head.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage_hardness as hardness;

fn bench_qp_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("d81_qp_obdd_width_grids");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        let (q, inst) = hardness::qp_grid_family(n);
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        let mut manager = builder.dd_manager();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let root = builder.compile_dd(&mut manager);
                (manager.width(root), manager.size(root))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("d81_qp_obdd_width_chains");
    group.sample_size(10);
    for len in [20usize, 40, 80] {
        let (q, inst) = hardness::qp_chain_family(len);
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        let mut manager = builder.dd_manager();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| {
                let root = builder.compile_dd(&mut manager);
                (manager.width(root), manager.size(root))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("d89_ucq_obdd_width_bipartite");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let (q, inst) = hardness::ucq_bipartite_family(n);
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        let mut manager = builder.dd_manager();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let root = builder.compile_dd(&mut manager);
                (manager.width(root), manager.size(root))
            })
        });
    }
    group.finish();
}

/// Legacy per-diagram OBDD vs shared dd engine on the same grid family,
/// apples to apples: the family and `LineageBuilder` are built once outside
/// the timing loop for all three variants, and every variant computes the
/// same `(width, size)` pair — so the timed work is exactly compile +
/// measure. `dd_fresh_manager` isolates the engine itself (complement
/// edges, balanced n-ary apply); `dd_shared_manager` adds persistent-cache
/// reuse across iterations. The recorded ratios go into `BENCH_pr2.json`.
fn bench_engine_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("d81_engine_comparison_grid");
    group.sample_size(10);
    for n in [3usize, 4] {
        let (q, inst) = hardness::qp_grid_family(n);
        let builder = LineageBuilder::new(&q, &inst).unwrap();
        group.bench_with_input(BenchmarkId::new("legacy_obdd", n), &n, |b, _| {
            b.iter(|| {
                let obdd = builder.obdd();
                (obdd.width(), obdd.size())
            })
        });
        group.bench_with_input(BenchmarkId::new("dd_fresh_manager", n), &n, |b, _| {
            b.iter(|| {
                let (manager, root) = builder.dd();
                (manager.width(root), manager.size(root))
            })
        });
        let mut manager = builder.dd_manager();
        group.bench_with_input(BenchmarkId::new("dd_shared_manager", n), &n, |b, _| {
            b.iter(|| {
                let root = builder.compile_dd(&mut manager);
                (manager.width(root), manager.size(root))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qp_widths, bench_engine_comparison);
criterion_main!(benches);
