//! Theorem 8.1 / Lemma 8.2: OBDD width of the intricate query q_p blows up on
//! grids but stays constant on chains (experiments D-8.1, D-8.7b, D-8.9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage_hardness as hardness;

fn bench_qp_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("d81_qp_obdd_width_grids");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| hardness::obdd_width_of_qp_on_grid(n))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("d81_qp_obdd_width_chains");
    group.sample_size(10);
    for len in [20usize, 40, 80] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| hardness::obdd_width_of_qp_on_chain(len))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("d89_ucq_obdd_width_bipartite");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| hardness::obdd_width_of_ucq_on_bipartite(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qp_widths);
criterion_main!(benches);
