//! Table 1 / Theorem 5.2, 5.7: non-probabilistic model checking and match
//! counting on bounded-treewidth instances (experiments T1-A, T1-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treelineage::prelude::*;
use treelineage_graph::generators;
use treelineage_instance::encodings;

fn bench_model_checking(c: &mut Criterion) {
    let sig = Signature::builder()
        .relation("S", 2)
        .relation("R", 2)
        .build();
    let q = parse_query(&sig, "S(x, y), S(y, z), x != z").unwrap();
    let mut group = c.benchmark_group("t1a_model_checking_partial_2_trees");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let inst = encodings::random_treelike_instance(&sig, n, 2, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| treelineage::model_check(&q, &inst))
        });
    }
    group.finish();
}

fn bench_match_counting(c: &mut Criterion) {
    let sig = Signature::builder()
        .relation("E", 2)
        .relation("Sel", 1)
        .build();
    let e = sig.relation_by_name("E").unwrap();
    let q = parse_query(&sig, "E(x, y), Sel(x), Sel(y)").unwrap();
    let mut group = c.benchmark_group("t1b_match_counting_paths");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let inst = encodings::graph_instance(&generators::path_graph(n), &sig, e);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                MatchCounter::new(&q, &inst, vec!["Sel"])
                    .count()
                    .unwrap()
                    .to_decimal_string()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_checking, bench_match_counting);
criterion_main!(benches);
