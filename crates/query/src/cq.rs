//! Conjunctive queries with disequalities and their unions
//! (the languages CQ, CQ≠, UCQ, UCQ≠ of Section 2).
//!
//! All queries are Boolean and constant-free, as in the paper. A CQ≠ is an
//! existentially quantified conjunction of relational atoms plus disequality
//! atoms `x ≠ y` between variables that occur in regular atoms; a UCQ≠ is a
//! disjunction of CQ≠s. The size `|q|` of a query is its total number of
//! atoms (disequalities are not counted in `|q|`, matching the paper's use of
//! `|q|` to calibrate line-instance lengths).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use treelineage_instance::{RelationId, Signature};

/// A query variable (an index local to the query, with a display name kept in
/// the query).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Variable(pub usize);

/// A relational atom `R(x_1, ..., x_k)` over query variables.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The atom's relation.
    pub relation: RelationId,
    /// The atom's argument variables.
    pub arguments: Vec<Variable>,
}

impl Atom {
    /// The set of distinct variables of the atom.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.arguments.iter().copied().collect()
    }
}

/// A conjunctive query with disequalities (CQ≠). A plain CQ is a CQ≠ with no
/// disequality atoms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    signature: Signature,
    atoms: Vec<Atom>,
    disequalities: Vec<(Variable, Variable)>,
    variable_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Starts building a CQ≠ over a signature.
    pub fn builder(signature: &Signature) -> CqBuilder {
        CqBuilder {
            signature: signature.clone(),
            atoms: Vec::new(),
            disequalities: Vec::new(),
            variable_names: Vec::new(),
            variable_index: BTreeMap::new(),
        }
    }

    /// The query's signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The relational atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The disequality atoms.
    pub fn disequalities(&self) -> &[(Variable, Variable)] {
        &self.disequalities
    }

    /// Number of relational atoms (the paper's `|q|` for a single CQ≠).
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.variable_names.len()
    }

    /// All variables of the query.
    pub fn variables(&self) -> Vec<Variable> {
        (0..self.variable_names.len()).map(Variable).collect()
    }

    /// The display name of a variable.
    pub fn variable_name(&self, v: Variable) -> &str {
        &self.variable_names[v.0]
    }

    /// Returns `true` if the query has no disequality atoms (i.e. it is a
    /// plain CQ, hence closed under homomorphisms).
    pub fn is_plain_cq(&self) -> bool {
        self.disequalities.is_empty()
    }

    /// Returns `true` if no relation symbol occurs in two different atoms
    /// (a *self-join-free* / non-repeating query, as in \[23\]).
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.atoms.iter().all(|a| seen.insert(a.relation))
    }

    /// Returns `true` if the query is connected in the sense of
    /// Definition 8.3: the graph on its atoms connecting atoms that share a
    /// variable (ignoring disequalities) is connected.
    pub fn is_connected(&self) -> bool {
        if self.atoms.len() <= 1 {
            return true;
        }
        let n = self.atoms.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in i + 1..n {
                if !self.atoms[i]
                    .variables()
                    .is_disjoint(&self.atoms[j].variables())
                {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for &j in &adjacency[i] {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == n
    }

    /// Returns `true` if the query is *hierarchical*: for every two variables
    /// `x`, `y`, the sets of atoms containing them are either disjoint or one
    /// contains the other. Hierarchical self-join-free CQs are exactly the
    /// safe ones in the dichotomy of \[19\], and hierarchical structure
    /// underlies the inversion-free expressions of Section 9.
    pub fn is_hierarchical(&self) -> bool {
        let occurrences: Vec<BTreeSet<usize>> = self
            .variables()
            .into_iter()
            .map(|v| {
                self.atoms
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.variables().contains(&v))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        for a in &occurrences {
            for b in &occurrences {
                if a.is_disjoint(b) || a.is_subset(b) || b.is_subset(a) {
                    continue;
                }
                return false;
            }
        }
        true
    }

    /// Returns `true` if the query is *ranked*: the relation `x < y` whenever
    /// `x` occurs before `y` in some atom is acyclic (Section 9). In
    /// particular no variable occurs twice in one atom.
    pub fn is_ranked(&self) -> bool {
        let n = self.variable_count();
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for atom in &self.atoms {
            for i in 0..atom.arguments.len() {
                for j in i + 1..atom.arguments.len() {
                    let x = atom.arguments[i].0;
                    let y = atom.arguments[j].0;
                    if x == y {
                        return false;
                    }
                    edges.insert((x, y));
                }
            }
        }
        // Cycle detection on the precedence digraph.
        let mut adjacency = vec![Vec::new(); n];
        for &(x, y) in &edges {
            adjacency[x].push(y);
        }
        let mut state = vec![0u8; n]; // 0 unseen, 1 in progress, 2 done
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            // Iterative DFS with explicit stack of (node, next child index).
            let mut stack = vec![(start, 0usize)];
            state[start] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < adjacency[node].len() {
                    let child = adjacency[node][*next];
                    *next += 1;
                    match state[child] {
                        0 => {
                            state[child] = 1;
                            stack.push((child, 0));
                        }
                        1 => return false,
                        _ => {}
                    }
                } else {
                    state[node] = 2;
                    stack.pop();
                }
            }
        }
        true
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        for atom in &self.atoms {
            let args: Vec<&str> = atom
                .arguments
                .iter()
                .map(|&v| self.variable_name(v))
                .collect();
            parts.push(format!(
                "{}({})",
                self.signature.relation(atom.relation).name(),
                args.join(", ")
            ));
        }
        for &(x, y) in &self.disequalities {
            parts.push(format!(
                "{} != {}",
                self.variable_name(x),
                self.variable_name(y)
            ));
        }
        write!(f, "{}", parts.join(", "))
    }
}

/// Builder for [`ConjunctiveQuery`].
pub struct CqBuilder {
    signature: Signature,
    atoms: Vec<Atom>,
    disequalities: Vec<(Variable, Variable)>,
    variable_names: Vec<String>,
    variable_index: BTreeMap<String, Variable>,
}

impl CqBuilder {
    /// Returns (creating if needed) the variable with the given name.
    pub fn variable(&mut self, name: &str) -> Variable {
        if let Some(&v) = self.variable_index.get(name) {
            return v;
        }
        let v = Variable(self.variable_names.len());
        self.variable_names.push(name.to_string());
        self.variable_index.insert(name.to_string(), v);
        v
    }

    /// Adds an atom by relation name and variable names.
    pub fn atom(mut self, relation: &str, variables: &[&str]) -> Self {
        let rel = self
            .signature
            .relation_by_name(relation)
            .unwrap_or_else(|| panic!("unknown relation {relation:?}"));
        assert_eq!(
            self.signature.arity(rel),
            variables.len(),
            "arity mismatch for {relation}"
        );
        let arguments: Vec<Variable> = variables.iter().map(|n| self.variable(n)).collect();
        self.atoms.push(Atom {
            relation: rel,
            arguments,
        });
        self
    }

    /// Adds a disequality atom between two variable names. Both variables
    /// must (eventually) occur in regular atoms; this is checked at build
    /// time.
    pub fn disequality(mut self, x: &str, y: &str) -> Self {
        let vx = self.variable(x);
        let vy = self.variable(y);
        self.disequalities.push((vx, vy));
        self
    }

    /// Finishes the query. Panics if a disequality mentions a variable that
    /// occurs in no regular atom (disallowed by the paper's definition of
    /// CQ≠).
    pub fn build(self) -> ConjunctiveQuery {
        let used: BTreeSet<Variable> = self
            .atoms
            .iter()
            .flat_map(|a| a.variables().into_iter())
            .collect();
        for &(x, y) in &self.disequalities {
            assert!(
                used.contains(&x) && used.contains(&y),
                "disequality variables must occur in regular atoms"
            );
        }
        ConjunctiveQuery {
            signature: self.signature,
            atoms: self.atoms,
            disequalities: self.disequalities,
            variable_names: self.variable_names,
        }
    }
}

/// A union of conjunctive queries with disequalities (UCQ≠). A UCQ is a UCQ≠
/// whose disjuncts are plain CQs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionOfConjunctiveQueries {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionOfConjunctiveQueries {
    /// Builds a UCQ≠ from its disjuncts (at least one).
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        assert!(!disjuncts.is_empty(), "a UCQ needs at least one disjunct");
        let sig = disjuncts[0].signature().clone();
        assert!(
            disjuncts.iter().all(|d| *d.signature() == sig),
            "all disjuncts must share the signature"
        );
        UnionOfConjunctiveQueries { disjuncts }
    }

    /// Wraps a single CQ≠ as a UCQ≠.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        UnionOfConjunctiveQueries::new(vec![cq])
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// The common signature.
    pub fn signature(&self) -> &Signature {
        self.disjuncts[0].signature()
    }

    /// The size `|q|`: total number of relational atoms over all disjuncts.
    pub fn size(&self) -> usize {
        self.disjuncts.iter().map(|d| d.atom_count()).sum()
    }

    /// Returns `true` if every disjunct is a plain CQ (the query is a UCQ,
    /// hence closed under homomorphisms).
    pub fn is_ucq(&self) -> bool {
        self.disjuncts.iter().all(|d| d.is_plain_cq())
    }

    /// Returns `true` if every disjunct is connected (Definition 8.3).
    pub fn is_connected(&self) -> bool {
        self.disjuncts.iter().all(|d| d.is_connected())
    }
}

impl fmt::Display for UnionOfConjunctiveQueries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.disjuncts.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join(" | "))
    }
}

/// Parses a UCQ≠ from a compact textual syntax: disjuncts separated by `|`,
/// atoms separated by `,`, disequalities written `x != y`.
///
/// ```text
/// R(x), S(x, y), T(y) | S(x, y), S(y, z), x != z
/// ```
pub fn parse_query(signature: &Signature, text: &str) -> Result<UnionOfConjunctiveQueries, String> {
    let mut disjuncts = Vec::new();
    for part in text.split('|') {
        let part = part.trim();
        if part.is_empty() {
            return Err("empty disjunct".to_string());
        }
        let mut builder = ConjunctiveQuery::builder(signature);
        for piece in split_top_level(part) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            if let Some((lhs, rhs)) = piece.split_once("!=") {
                let (x, y) = (lhs.trim(), rhs.trim());
                if x.is_empty() || y.is_empty() {
                    return Err(format!("malformed disequality {piece:?}"));
                }
                builder = builder.disequality(x, y);
            } else {
                let open = piece
                    .find('(')
                    .ok_or_else(|| format!("malformed atom {piece:?}"))?;
                if !piece.ends_with(')') {
                    return Err(format!("malformed atom {piece:?}"));
                }
                let relation = piece[..open].trim();
                let args: Vec<&str> = piece[open + 1..piece.len() - 1]
                    .split(',')
                    .map(|a| a.trim())
                    .collect();
                if args.iter().any(|a| a.is_empty()) {
                    return Err(format!("malformed atom {piece:?}"));
                }
                let rel = signature
                    .relation_by_name(relation)
                    .ok_or_else(|| format!("unknown relation {relation:?}"))?;
                if signature.arity(rel) != args.len() {
                    return Err(format!(
                        "arity mismatch for {relation}: expected {}, got {}",
                        signature.arity(rel),
                        args.len()
                    ));
                }
                builder = builder.atom(relation, &args);
            }
        }
        disjuncts.push(builder.build());
    }
    if disjuncts.is_empty() {
        return Err("empty query".to_string());
    }
    Ok(UnionOfConjunctiveQueries::new(disjuncts))
}

/// Splits on commas that are not inside parentheses.
fn split_top_level(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    #[test]
    fn builder_and_display() {
        let q = ConjunctiveQuery::builder(&rst())
            .atom("R", &["x"])
            .atom("S", &["x", "y"])
            .atom("T", &["y"])
            .build();
        assert_eq!(q.atom_count(), 3);
        assert_eq!(q.variable_count(), 2);
        assert_eq!(q.to_string(), "R(x), S(x, y), T(y)");
        assert!(q.is_plain_cq());
        assert!(q.is_self_join_free());
        assert!(q.is_connected());
    }

    #[test]
    fn parser_roundtrip() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y) | S(x, y), S(y, z), x != z").unwrap();
        assert_eq!(q.disjuncts().len(), 2);
        assert_eq!(q.size(), 5);
        assert!(!q.is_ucq());
        assert!(q.is_connected());
        assert_eq!(q.disjuncts()[1].disequalities().len(), 1);
    }

    #[test]
    fn parser_errors() {
        assert!(parse_query(&rst(), "U(x)").is_err());
        assert!(parse_query(&rst(), "R(x, y)").is_err());
        assert!(parse_query(&rst(), "R(x), ").is_ok()); // trailing comma tolerated
        assert!(parse_query(&rst(), "").is_err());
        assert!(parse_query(&rst(), "R x").is_err());
    }

    #[test]
    fn connectivity() {
        // Disconnected: R(x), T(y) share no variable.
        let q = parse_query(&rst(), "R(x), T(y)").unwrap();
        assert!(!q.is_connected());
        let q2 = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        assert!(q2.is_connected());
        // A single atom is connected.
        let q3 = parse_query(&rst(), "R(x)").unwrap();
        assert!(q3.is_connected());
    }

    #[test]
    fn hierarchical_queries() {
        // The classic unsafe query R(x), S(x,y), T(y) is NOT hierarchical:
        // atoms(x) = {R, S}, atoms(y) = {S, T} overlap without containment.
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        assert!(!q.disjuncts()[0].is_hierarchical());
        // R(x), S(x, y) is hierarchical.
        let q2 = parse_query(&rst(), "R(x), S(x, y)").unwrap();
        assert!(q2.disjuncts()[0].is_hierarchical());
    }

    #[test]
    fn self_join_detection() {
        let q = parse_query(&rst(), "S(x, y), S(y, z)").unwrap();
        assert!(!q.disjuncts()[0].is_self_join_free());
        let q2 = parse_query(&rst(), "R(x), S(x, y)").unwrap();
        assert!(q2.disjuncts()[0].is_self_join_free());
    }

    #[test]
    fn ranked_queries() {
        // S(x, y), S(y, z): precedence x < y < z is acyclic -> ranked.
        let q = parse_query(&rst(), "S(x, y), S(y, z)").unwrap();
        assert!(q.disjuncts()[0].is_ranked());
        // S(x, y), S(y, x): cycle x < y < x -> not ranked.
        let q2 = parse_query(&rst(), "S(x, y), S(y, x)").unwrap();
        assert!(!q2.disjuncts()[0].is_ranked());
        // S(x, x): variable repeated in an atom -> not ranked.
        let q3 = parse_query(&rst(), "S(x, x)").unwrap();
        assert!(!q3.disjuncts()[0].is_ranked());
    }

    #[test]
    fn disequality_must_use_query_variables() {
        let result = std::panic::catch_unwind(|| {
            ConjunctiveQuery::builder(&rst())
                .atom("R", &["x"])
                .disequality("x", "z")
                .build()
        });
        assert!(result.is_err());
    }

    #[test]
    fn ucq_classification() {
        let q = parse_query(&rst(), "R(x) | T(y)").unwrap();
        assert!(q.is_ucq());
        let q2 = parse_query(&rst(), "R(x), R(y), x != y").unwrap();
        assert!(!q2.is_ucq());
    }
}
