//! Query languages and query analysis for the `treelineage` workspace.
//!
//! Implements the query-side substrate of the paper: conjunctive queries with
//! disequalities and their unions (CQ, CQ≠, UCQ, UCQ≠ — Section 2), a small
//! textual parser, homomorphism / match / minimal-match computation, an MSO
//! abstract syntax with a naive evaluation oracle, structural query analysis
//! (connectivity, self-join-freeness, hierarchicality, rankedness), and the
//! intricacy decision procedure of Lemma 8.6 that drives the OBDD
//! meta-dichotomy of Section 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cq;
pub mod intricate;
pub mod matching;
mod mso;

pub use cq::{parse_query, Atom, ConjunctiveQuery, CqBuilder, UnionOfConjunctiveQueries, Variable};
pub use mso::{odd_number_of_labels, two_distinct_unary, FoVar, MsoFormula, SetVar};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use treelineage_instance::{encodings, FactId, Signature};

    fn sig() -> Signature {
        Signature::builder()
            .relation("R", 2)
            .relation("S", 2)
            .relation("L", 1)
            .build()
    }

    /// Random small UCQ≠ queries over the fixed signature, built from a pool
    /// of atom shapes.
    fn arbitrary_query() -> impl Strategy<Value = UnionOfConjunctiveQueries> {
        let atom_pool = [
            ("R", vec!["x", "y"]),
            ("S", vec!["y", "z"]),
            ("S", vec!["x", "y"]),
            ("R", vec!["z", "x"]),
            ("L", vec!["x"]),
            ("L", vec!["y"]),
        ];
        proptest::collection::vec(
            (
                proptest::collection::vec(0usize..atom_pool.len(), 1..4),
                any::<bool>(),
            ),
            1..3,
        )
        .prop_map(move |disjunct_specs| {
            let signature = sig();
            let disjuncts: Vec<ConjunctiveQuery> = disjunct_specs
                .into_iter()
                .map(|(atom_indices, with_diseq)| {
                    let mut builder = ConjunctiveQuery::builder(&signature);
                    let mut used_vars: BTreeSet<&str> = BTreeSet::new();
                    for i in &atom_indices {
                        let (rel, vars) = &atom_pool[*i];
                        let var_refs: Vec<&str> = vars.iter().map(|s| &**s).collect();
                        used_vars.extend(var_refs.iter().copied());
                        builder = builder.atom(rel, &var_refs);
                    }
                    if with_diseq && used_vars.contains("x") && used_vars.contains("y") {
                        builder = builder.disequality("x", "y");
                    }
                    builder.build()
                })
                .collect();
            UnionOfConjunctiveQueries::new(disjuncts)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn ucq_neq_queries_are_monotone(q in arbitrary_query(), seed in 0u64..1000) {
            // Monotonicity (Section 2): adding facts can only help a UCQ≠.
            let inst = encodings::random_treelike_instance(&sig(), 6, 2, seed);
            if inst.fact_count() <= 12 {
                prop_assert!(matching::check_monotone_on(&q, &inst));
            }
        }

        #[test]
        fn matches_are_satisfying_worlds(q in arbitrary_query(), seed in 0u64..1000) {
            let inst = encodings::random_treelike_instance(&sig(), 7, 2, seed);
            for m in matching::all_matches(&q, &inst) {
                prop_assert!(matching::satisfied_in_world(&q, &inst, &m));
            }
            for m in matching::minimal_matches(&q, &inst) {
                prop_assert!(matching::satisfied_in_world(&q, &inst, &m));
            }
        }

        #[test]
        fn satisfaction_agrees_with_match_existence(q in arbitrary_query(), seed in 0u64..1000) {
            let inst = encodings::random_treelike_instance(&sig(), 6, 2, seed);
            let sat = matching::satisfied(&q, &inst);
            let has_match = !matching::all_matches(&q, &inst).is_empty();
            prop_assert_eq!(sat, has_match);
        }

        #[test]
        fn plain_cq_satisfaction_is_preserved_by_homomorphisms(seed in 0u64..500) {
            // Closure under homomorphisms (Section 2) for UCQs: if I |= q and
            // I -> I', then I' |= q. We test it with I a subinstance of I'
            // mapped by the identity.
            let q = parse_query(&sig(), "R(x, y), S(y, z)").unwrap();
            let inst = encodings::random_treelike_instance(&sig(), 6, 2, seed);
            if matching::satisfied(&q, &inst) {
                // Identity into a superinstance.
                let mut bigger = inst.clone();
                bigger.add_fact_by_name("L", &[99]);
                prop_assert!(matching::satisfied(&q, &bigger));
            }
        }

        #[test]
        fn line_instances_have_path_gaifman_graphs(len in 1usize..6, pick in any::<u64>()) {
            let lines = encodings::all_line_instances(&sig(), len);
            let line = &lines[(pick % lines.len() as u64) as usize];
            prop_assert_eq!(line.fact_count(), len);
            let (g, _) = line.gaifman_graph();
            prop_assert!(g.is_tree());
            prop_assert!(g.max_degree() <= 2);
        }
    }

    #[test]
    fn intricacy_decision_is_consistent_with_manual_reasoning() {
        // A query with only "directed path" join patterns misses the
        // head-to-head and tail-to-tail lines (and the lines mixing the two
        // relations), so it is not 0-intricate — the decision procedure must
        // produce a counterexample line of length 2 with no covering match.
        let signature = Signature::builder()
            .relation("R", 2)
            .relation("S", 2)
            .build();
        let q = parse_query(
            &signature,
            "S(x, y), S(y, z), x != z | R(x, y), R(y, z), x != z",
        )
        .unwrap();
        assert!(!intricate::is_n_intricate(&q, 0));
        let counterexample = intricate::n_intricacy_counterexample(&q, 0).unwrap();
        assert_eq!(counterexample.fact_count(), 2);
        let minimal = matching::minimal_matches(&q, &counterexample);
        assert!(minimal
            .iter()
            .all(|m| !(m.contains(&FactId(0)) && m.contains(&FactId(1)))));
    }
}
