//! Homomorphisms, matches and minimal matches of UCQ≠ queries
//! (Section 2 of the paper).
//!
//! A homomorphism from a CQ≠ to an instance maps query variables to domain
//! elements so that every relational atom becomes a fact of the instance and
//! every disequality is satisfied. A *match* is the set of facts that is the
//! image of some homomorphism; a *minimal match* is a match minimal under
//! inclusion. Matches drive everything downstream: query evaluation, lineage
//! construction (the lineage of a UCQ≠ is the disjunction over matches of the
//! conjunction of their facts), and the intricacy test of Section 8.

use crate::cq::{ConjunctiveQuery, UnionOfConjunctiveQueries, Variable};
use std::collections::{BTreeMap, BTreeSet};
use treelineage_instance::{Element, FactId, Instance};

/// A homomorphism from a CQ≠ to an instance: an assignment of its variables.
pub type Homomorphism = BTreeMap<Variable, Element>;

/// Enumerates all homomorphisms from `query` to `instance`, restricted to the
/// facts in `world` (pass all fact ids for the full instance). Backtracking
/// over atoms in order, with the candidate facts filtered per relation.
pub fn homomorphisms_in_world(
    query: &ConjunctiveQuery,
    instance: &Instance,
    world: &BTreeSet<FactId>,
) -> Vec<Homomorphism> {
    let mut results = Vec::new();
    let mut assignment: Homomorphism = BTreeMap::new();
    let facts_by_relation: BTreeMap<_, Vec<FactId>> = {
        let mut map: BTreeMap<_, Vec<FactId>> = BTreeMap::new();
        for &id in world {
            map.entry(instance.fact(id).relation())
                .or_default()
                .push(id);
        }
        map
    };
    extend(
        query,
        instance,
        &facts_by_relation,
        0,
        &mut assignment,
        &mut results,
    );
    results
}

fn extend(
    query: &ConjunctiveQuery,
    instance: &Instance,
    facts_by_relation: &BTreeMap<treelineage_instance::RelationId, Vec<FactId>>,
    atom_index: usize,
    assignment: &mut Homomorphism,
    results: &mut Vec<Homomorphism>,
) {
    if atom_index == query.atoms().len() {
        // Check disequalities (all variables are now assigned, since every
        // disequality variable occurs in some atom).
        for &(x, y) in query.disequalities() {
            if assignment[&x] == assignment[&y] {
                return;
            }
        }
        results.push(assignment.clone());
        return;
    }
    let atom = &query.atoms()[atom_index];
    let candidates = facts_by_relation
        .get(&atom.relation)
        .map(|v| v.as_slice())
        .unwrap_or(&[]);
    'facts: for &fact_id in candidates {
        let fact = instance.fact(fact_id);
        // Try to unify the atom with the fact.
        let mut newly_bound = Vec::new();
        for (var, &value) in atom.arguments.iter().zip(fact.arguments()) {
            match assignment.get(var) {
                Some(&bound) if bound != value => {
                    for v in newly_bound {
                        assignment.remove(&v);
                    }
                    continue 'facts;
                }
                Some(_) => {}
                None => {
                    assignment.insert(*var, value);
                    newly_bound.push(*var);
                }
            }
        }
        extend(
            query,
            instance,
            facts_by_relation,
            atom_index + 1,
            assignment,
            results,
        );
        for v in newly_bound {
            assignment.remove(&v);
        }
    }
}

/// The match induced by a homomorphism: the set of facts that are images of
/// the query's atoms.
pub fn match_of(
    query: &ConjunctiveQuery,
    instance: &Instance,
    homomorphism: &Homomorphism,
) -> BTreeSet<FactId> {
    query
        .atoms()
        .iter()
        .map(|atom| {
            let image: Vec<Element> = atom.arguments.iter().map(|v| homomorphism[v]).collect();
            instance
                .fact_id(atom.relation, &image)
                .expect("homomorphism image must be a fact")
        })
        .collect()
}

/// All matches of a UCQ≠ on an instance (each reported once).
pub fn all_matches(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
) -> BTreeSet<BTreeSet<FactId>> {
    let world: BTreeSet<FactId> = instance.fact_ids().collect();
    let mut matches = BTreeSet::new();
    for disjunct in query.disjuncts() {
        for hom in homomorphisms_in_world(disjunct, instance, &world) {
            matches.insert(match_of(disjunct, instance, &hom));
        }
    }
    matches
}

/// The minimal matches of a UCQ≠ on an instance: matches minimal under
/// inclusion (Section 2; intricacy is defined through them).
pub fn minimal_matches(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
) -> BTreeSet<BTreeSet<FactId>> {
    let matches = all_matches(query, instance);
    matches
        .iter()
        .filter(|m| {
            !matches
                .iter()
                .any(|other| other != *m && other.is_subset(m))
        })
        .cloned()
        .collect()
}

/// Evaluates a UCQ≠ on the subinstance given by `world`.
pub fn satisfied_in_world(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
    world: &BTreeSet<FactId>,
) -> bool {
    query
        .disjuncts()
        .iter()
        .any(|disjunct| !homomorphisms_in_world(disjunct, instance, world).is_empty())
}

/// Evaluates a UCQ≠ on the full instance.
pub fn satisfied(query: &UnionOfConjunctiveQueries, instance: &Instance) -> bool {
    let world: BTreeSet<FactId> = instance.fact_ids().collect();
    satisfied_in_world(query, instance, &world)
}

/// Checks monotonicity semantically on a specific instance family sample: for
/// every world `W ⊆ W'`, satisfaction in `W` implies satisfaction in `W'`.
/// UCQ≠ queries are always monotone; this is used in tests as a sanity check
/// of the evaluator itself. Exponential; requires at most 15 facts.
pub fn check_monotone_on(query: &UnionOfConjunctiveQueries, instance: &Instance) -> bool {
    let n = instance.fact_count();
    assert!(n <= 15, "monotonicity check limited to 15 facts");
    let satisfied_masks: Vec<bool> = (0u32..(1 << n))
        .map(|mask| {
            let world: BTreeSet<FactId> =
                (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
            satisfied_in_world(query, instance, &world)
        })
        .collect();
    for mask in 0u32..(1 << n) {
        if !satisfied_masks[mask as usize] {
            continue;
        }
        for sup in 0u32..(1 << n) {
            if mask & sup == mask && !satisfied_masks[sup as usize] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::parse_query;
    use treelineage_instance::Signature;

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    fn rst_instance() -> Instance {
        // R(1), S(1,2), T(2), S(2,3)
        let mut inst = Instance::new(rst());
        inst.add_fact_by_name("R", &[1]);
        inst.add_fact_by_name("S", &[1, 2]);
        inst.add_fact_by_name("T", &[2]);
        inst.add_fact_by_name("S", &[2, 3]);
        inst
    }

    #[test]
    fn simple_query_evaluation() {
        let inst = rst_instance();
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        assert!(satisfied(&q, &inst));
        let q2 = parse_query(&rst(), "T(x), S(x, y), R(y)").unwrap();
        assert!(!satisfied(&q2, &inst));
    }

    #[test]
    fn homomorphism_enumeration() {
        let inst = rst_instance();
        let world: BTreeSet<FactId> = inst.fact_ids().collect();
        let q = parse_query(&rst(), "S(x, y)").unwrap();
        let homs = homomorphisms_in_world(&q.disjuncts()[0], &inst, &world);
        assert_eq!(homs.len(), 2);
        let q2 = parse_query(&rst(), "S(x, y), S(y, z)").unwrap();
        let homs2 = homomorphisms_in_world(&q2.disjuncts()[0], &inst, &world);
        assert_eq!(homs2.len(), 1); // S(1,2), S(2,3)
    }

    #[test]
    fn disequalities_filter_homomorphisms() {
        let sig = Signature::builder().relation("R", 1).build();
        let mut inst = Instance::new(sig.clone());
        inst.add_fact_by_name("R", &[1]);
        inst.add_fact_by_name("R", &[2]);
        // Without the disequality there are 4 homomorphisms, with it only 2.
        let q = parse_query(&sig, "R(x), R(y)").unwrap();
        let q_neq = parse_query(&sig, "R(x), R(y), x != y").unwrap();
        let world: BTreeSet<FactId> = inst.fact_ids().collect();
        assert_eq!(
            homomorphisms_in_world(&q.disjuncts()[0], &inst, &world).len(),
            4
        );
        assert_eq!(
            homomorphisms_in_world(&q_neq.disjuncts()[0], &inst, &world).len(),
            2
        );
    }

    #[test]
    fn matches_and_minimal_matches() {
        let inst = rst_instance();
        // S(x, y) has two matches, both singletons, both minimal.
        let q = parse_query(&rst(), "S(x, y)").unwrap();
        let matches = all_matches(&q, &inst);
        assert_eq!(matches.len(), 2);
        assert_eq!(minimal_matches(&q, &inst), matches);
    }

    #[test]
    fn minimal_matches_filter_non_minimal() {
        // Query S(x, y) | S(x, y), T(y): the second disjunct's matches are
        // supersets of the first's, so only the singleton S-matches are
        // minimal.
        let inst = rst_instance();
        let q = parse_query(&rst(), "S(x, y) | S(x, y), T(y)").unwrap();
        let all = all_matches(&q, &inst);
        assert_eq!(all.len(), 3);
        let minimal = minimal_matches(&q, &inst);
        assert_eq!(minimal.len(), 2);
        assert!(minimal.iter().all(|m| m.len() == 1));
    }

    #[test]
    fn evaluation_in_restricted_worlds() {
        let inst = rst_instance();
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        // Without the S(1,2) fact (id 1) the query fails.
        let world: BTreeSet<FactId> = inst.fact_ids().filter(|f| f.0 != 1).collect();
        assert!(!satisfied_in_world(&q, &inst, &world));
        // With only R(1), S(1,2), T(2) it holds.
        let world2: BTreeSet<FactId> = [0, 1, 2].into_iter().map(FactId).collect();
        assert!(satisfied_in_world(&q, &inst, &world2));
    }

    #[test]
    fn ucq_with_disequality_is_monotone() {
        let inst = rst_instance();
        let q = parse_query(&rst(), "S(x, y), S(y, z), x != z | R(x), T(y)").unwrap();
        assert!(check_monotone_on(&q, &inst));
    }

    #[test]
    fn self_join_query_on_grid_like_instance() {
        let sig = Signature::builder().relation("S", 2).build();
        let mut inst = Instance::new(sig.clone());
        // A small 2x2 grid of S-facts.
        inst.add_fact_by_name("S", &[0, 1]);
        inst.add_fact_by_name("S", &[2, 3]);
        inst.add_fact_by_name("S", &[0, 2]);
        inst.add_fact_by_name("S", &[1, 3]);
        // Path of length 2 in the Gaifman graph: S(x,y), S(y,z) with x != z,
        // or two S-facts meeting head-to-head / tail-to-tail.
        let q = parse_query(
            &sig,
            "S(x, y), S(y, z), x != z | S(x, y), S(z, y), x != z | S(y, x), S(y, z), x != z",
        )
        .unwrap();
        assert!(satisfied(&q, &inst));
        let matches = minimal_matches(&q, &inst);
        // Every minimal match has exactly 2 facts.
        assert!(matches.iter().all(|m| m.len() == 2));
        assert!(!matches.is_empty());
    }
}
