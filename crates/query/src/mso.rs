//! Monadic second-order logic (MSO) over relational instances.
//!
//! The paper's tractability results (Theorems 3.2, 5.2, 5.7, 6.5, 6.11) are
//! stated for MSO, the extension of first-order logic with quantification
//! over *sets* of domain elements. This module provides the MSO abstract
//! syntax and a naive possible-assignments evaluator used as the
//! ground-truth oracle by tests (it enumerates set assignments, so it is
//! exponential and restricted to small instances). The tractable evaluation
//! paths live downstream: `treelineage_encoding::compile_mso` compiles the
//! existential-positive first-order fragment (atoms, ∧, ∨, ∃, equalities
//! and negated equalities) into deterministic tree automata over instance
//! encodings — rejecting the rest with a typed error — and the core crate
//! evaluates all UCQ≠ queries through that pipeline or through dynamic
//! programs over tree decompositions; see DESIGN.md §2.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use treelineage_instance::{Element, Instance, RelationId};
use treelineage_num::BigUint;

/// A first-order variable of an MSO formula.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FoVar(pub usize);

/// A second-order (set) variable of an MSO formula.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SetVar(pub usize);

/// An MSO formula over a relational signature. First-order sentences are the
/// fragment with no [`MsoFormula::ExistsSet`] / [`MsoFormula::ForallSet`] /
/// [`MsoFormula::Member`] constructs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MsoFormula {
    /// A relational atom `R(x_1, ..., x_k)`.
    Atom {
        /// The atom's relation.
        relation: RelationId,
        /// The atom's first-order arguments.
        arguments: Vec<FoVar>,
    },
    /// Equality of two first-order variables.
    Equal(FoVar, FoVar),
    /// Set membership `x ∈ X`.
    Member(FoVar, SetVar),
    /// Logical negation.
    Not(Box<MsoFormula>),
    /// Conjunction (empty = true).
    And(Vec<MsoFormula>),
    /// Disjunction (empty = false).
    Or(Vec<MsoFormula>),
    /// Implication.
    Implies(Box<MsoFormula>, Box<MsoFormula>),
    /// First-order existential quantification.
    ExistsFo(FoVar, Box<MsoFormula>),
    /// First-order universal quantification.
    ForallFo(FoVar, Box<MsoFormula>),
    /// Second-order (set) existential quantification.
    ExistsSet(SetVar, Box<MsoFormula>),
    /// Second-order (set) universal quantification.
    ForallSet(SetVar, Box<MsoFormula>),
}

impl MsoFormula {
    /// Returns `true` if the formula is first-order (no set quantifiers or
    /// membership atoms).
    pub fn is_first_order(&self) -> bool {
        match self {
            MsoFormula::Atom { .. } | MsoFormula::Equal(_, _) => true,
            MsoFormula::Member(_, _)
            | MsoFormula::ExistsSet(_, _)
            | MsoFormula::ForallSet(_, _) => false,
            MsoFormula::Not(f) => f.is_first_order(),
            MsoFormula::And(fs) | MsoFormula::Or(fs) => fs.iter().all(|f| f.is_first_order()),
            MsoFormula::Implies(a, b) => a.is_first_order() && b.is_first_order(),
            MsoFormula::ExistsFo(_, f) | MsoFormula::ForallFo(_, f) => f.is_first_order(),
        }
    }

    /// The free second-order variables of the formula (Definition 5.6's match
    /// counting counts assignments to these).
    pub fn free_set_variables(&self) -> BTreeSet<SetVar> {
        let mut free = BTreeSet::new();
        self.collect_free_sets(&mut BTreeSet::new(), &mut free);
        free
    }

    fn collect_free_sets(&self, bound: &mut BTreeSet<SetVar>, free: &mut BTreeSet<SetVar>) {
        match self {
            MsoFormula::Atom { .. } | MsoFormula::Equal(_, _) => {}
            MsoFormula::Member(_, x) => {
                if !bound.contains(x) {
                    free.insert(*x);
                }
            }
            MsoFormula::Not(f) => f.collect_free_sets(bound, free),
            MsoFormula::And(fs) | MsoFormula::Or(fs) => {
                for f in fs {
                    f.collect_free_sets(bound, free);
                }
            }
            MsoFormula::Implies(a, b) => {
                a.collect_free_sets(bound, free);
                b.collect_free_sets(bound, free);
            }
            MsoFormula::ExistsFo(_, f) | MsoFormula::ForallFo(_, f) => {
                f.collect_free_sets(bound, free)
            }
            MsoFormula::ExistsSet(x, f) | MsoFormula::ForallSet(x, f) => {
                let newly = bound.insert(*x);
                f.collect_free_sets(bound, free);
                if newly {
                    bound.remove(x);
                }
            }
        }
    }

    /// Evaluates the (sentence) formula on an instance by naive enumeration.
    /// First-order quantifiers range over the active domain; set quantifiers
    /// over all subsets of the active domain, so the evaluation is
    /// exponential — an oracle for small instances only (the instance must
    /// have at most 16 domain elements if the formula uses set quantifiers).
    pub fn holds_on(&self, instance: &Instance) -> bool {
        let domain: Vec<Element> = instance.domain().into_iter().collect();
        if !self.is_first_order() {
            assert!(
                domain.len() <= 16,
                "naive MSO evaluation limited to 16 domain elements"
            );
        }
        self.eval(
            instance,
            &domain,
            &mut BTreeMap::new(),
            &mut BTreeMap::new(),
        )
    }

    /// Evaluates the formula with explicit assignments to (free) first-order
    /// and set variables.
    pub fn holds_with(
        &self,
        instance: &Instance,
        fo_assignment: &BTreeMap<FoVar, Element>,
        set_assignment: &BTreeMap<SetVar, BTreeSet<Element>>,
    ) -> bool {
        let domain: Vec<Element> = instance.domain().into_iter().collect();
        let mut fo = fo_assignment.clone();
        let mut sets = set_assignment.clone();
        self.eval(instance, &domain, &mut fo, &mut sets)
    }

    fn eval(
        &self,
        instance: &Instance,
        domain: &[Element],
        fo: &mut BTreeMap<FoVar, Element>,
        sets: &mut BTreeMap<SetVar, BTreeSet<Element>>,
    ) -> bool {
        match self {
            MsoFormula::Atom {
                relation,
                arguments,
            } => {
                let image: Vec<Element> = arguments
                    .iter()
                    .map(|v| *fo.get(v).expect("unbound first-order variable"))
                    .collect();
                instance.contains(*relation, &image)
            }
            MsoFormula::Equal(x, y) => fo[x] == fo[y],
            MsoFormula::Member(x, set) => sets
                .get(set)
                .expect("unbound set variable")
                .contains(&fo[x]),
            MsoFormula::Not(f) => !f.eval(instance, domain, fo, sets),
            MsoFormula::And(fs) => fs.iter().all(|f| f.eval(instance, domain, fo, sets)),
            MsoFormula::Or(fs) => fs.iter().any(|f| f.eval(instance, domain, fo, sets)),
            MsoFormula::Implies(a, b) => {
                !a.eval(instance, domain, fo, sets) || b.eval(instance, domain, fo, sets)
            }
            MsoFormula::ExistsFo(v, f) => {
                let saved = fo.get(v).copied();
                let result = domain.iter().any(|&e| {
                    fo.insert(*v, e);
                    f.eval(instance, domain, fo, sets)
                });
                restore_fo(fo, *v, saved);
                result
            }
            MsoFormula::ForallFo(v, f) => {
                let saved = fo.get(v).copied();
                let result = domain.iter().all(|&e| {
                    fo.insert(*v, e);
                    f.eval(instance, domain, fo, sets)
                });
                restore_fo(fo, *v, saved);
                result
            }
            MsoFormula::ExistsSet(x, f) => {
                let saved = sets.get(x).cloned();
                let result = subsets_of(domain).any(|s| {
                    sets.insert(*x, s);
                    f.eval(instance, domain, fo, sets)
                });
                restore_set(sets, *x, saved);
                result
            }
            MsoFormula::ForallSet(x, f) => {
                let saved = sets.get(x).cloned();
                let result = subsets_of(domain).all(|s| {
                    sets.insert(*x, s);
                    f.eval(instance, domain, fo, sets)
                });
                restore_set(sets, *x, saved);
                result
            }
        }
    }

    /// Counts the assignments of the free set variables under which the
    /// formula holds (Definition 5.6, the match counting problem), by naive
    /// enumeration — the oracle for the tractable counting of the core crate.
    /// Exponential; the instance must have at most 16 domain elements.
    pub fn count_matches_bruteforce(&self, instance: &Instance) -> BigUint {
        let domain: Vec<Element> = instance.domain().into_iter().collect();
        assert!(
            domain.len() <= 16,
            "naive match counting limited to 16 domain elements"
        );
        let free: Vec<SetVar> = self.free_set_variables().into_iter().collect();
        let mut count = BigUint::zero();
        let mut assignment: BTreeMap<SetVar, BTreeSet<Element>> = BTreeMap::new();
        self.count_rec(instance, &domain, &free, 0, &mut assignment, &mut count);
        count
    }

    fn count_rec(
        &self,
        instance: &Instance,
        domain: &[Element],
        free: &[SetVar],
        next: usize,
        assignment: &mut BTreeMap<SetVar, BTreeSet<Element>>,
        count: &mut BigUint,
    ) {
        if next == free.len() {
            if self.holds_with(instance, &BTreeMap::new(), assignment) {
                *count += &BigUint::one();
            }
            return;
        }
        for s in subsets_of(domain) {
            assignment.insert(free[next], s);
            self.count_rec(instance, domain, free, next + 1, assignment, count);
        }
        assignment.remove(&free[next]);
    }
}

fn restore_fo(fo: &mut BTreeMap<FoVar, Element>, v: FoVar, saved: Option<Element>) {
    match saved {
        Some(e) => {
            fo.insert(v, e);
        }
        None => {
            fo.remove(&v);
        }
    }
}

fn restore_set(
    sets: &mut BTreeMap<SetVar, BTreeSet<Element>>,
    v: SetVar,
    saved: Option<BTreeSet<Element>>,
) {
    match saved {
        Some(s) => {
            sets.insert(v, s);
        }
        None => {
            sets.remove(&v);
        }
    }
}

fn subsets_of(domain: &[Element]) -> impl Iterator<Item = BTreeSet<Element>> + '_ {
    (0u64..(1u64 << domain.len())).map(move |mask| {
        domain
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &e)| e)
            .collect()
    })
}

impl fmt::Display for MsoFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsoFormula::Atom {
                relation,
                arguments,
            } => {
                let args: Vec<String> = arguments.iter().map(|v| format!("x{}", v.0)).collect();
                write!(f, "R{}({})", relation.0, args.join(","))
            }
            MsoFormula::Equal(x, y) => write!(f, "x{} = x{}", x.0, y.0),
            MsoFormula::Member(x, s) => write!(f, "x{} ∈ X{}", x.0, s.0),
            MsoFormula::Not(g) => write!(f, "¬({g})"),
            MsoFormula::And(gs) => {
                let parts: Vec<String> = gs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" ∧ "))
            }
            MsoFormula::Or(gs) => {
                let parts: Vec<String> = gs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" ∨ "))
            }
            MsoFormula::Implies(a, b) => write!(f, "({a}) → ({b})"),
            MsoFormula::ExistsFo(v, g) => write!(f, "∃x{} ({g})", v.0),
            MsoFormula::ForallFo(v, g) => write!(f, "∀x{} ({g})", v.0),
            MsoFormula::ExistsSet(v, g) => write!(f, "∃X{} ({g})", v.0),
            MsoFormula::ForallSet(v, g) => write!(f, "∀X{} ({g})", v.0),
        }
    }
}

/// Builds the first-order sentence "there exist two distinct elements with a
/// unary `R` fact" (the CQ≠ of Proposition 7.1 expressed in FO), mainly for
/// cross-checking the MSO evaluator against the CQ≠ machinery.
pub fn two_distinct_unary(relation: RelationId) -> MsoFormula {
    let x = FoVar(0);
    let y = FoVar(1);
    MsoFormula::ExistsFo(
        x,
        Box::new(MsoFormula::ExistsFo(
            y,
            Box::new(MsoFormula::And(vec![
                MsoFormula::Atom {
                    relation,
                    arguments: vec![x],
                },
                MsoFormula::Atom {
                    relation,
                    arguments: vec![y],
                },
                MsoFormula::Not(Box::new(MsoFormula::Equal(x, y))),
            ])),
        )),
    )
}

/// Builds the MSO sentence of Proposition 7.3: using the successor relation
/// `edge`, the number of elements carrying the unary label `label` is odd.
/// The construction mimics a two-state automaton with the partition
/// `(X_0, X_1)` of the domain, exactly as in the paper's appendix proof.
pub fn odd_number_of_labels(label: RelationId, edge: RelationId) -> MsoFormula {
    use MsoFormula as M;
    let x0 = SetVar(0);
    let x1 = SetVar(1);
    let x = FoVar(0);
    let y = FoVar(1);
    let atom = |relation: RelationId, arguments: Vec<FoVar>| M::Atom {
        relation,
        arguments,
    };
    // Part(X0, X1): every element is in exactly one of X0, X1.
    let part = M::ForallFo(
        x,
        Box::new(M::And(vec![
            M::Or(vec![M::Member(x, x0), M::Member(x, x1)]),
            M::Not(Box::new(M::And(vec![M::Member(x, x0), M::Member(x, x1)]))),
        ])),
    );
    // Transitions along edges E(x, y): the state at x is the state at y
    // flipped iff L(x) holds.
    let transition = M::ForallFo(
        x,
        Box::new(M::ForallFo(
            y,
            Box::new(M::Implies(
                Box::new(atom(edge, vec![x, y])),
                Box::new(M::And(vec![
                    // L(x): state changes.
                    M::Implies(
                        Box::new(M::And(vec![atom(label, vec![x]), M::Member(y, x1)])),
                        Box::new(M::Member(x, x0)),
                    ),
                    M::Implies(
                        Box::new(M::And(vec![atom(label, vec![x]), M::Member(y, x0)])),
                        Box::new(M::Member(x, x1)),
                    ),
                    // not L(x): state is copied.
                    M::Implies(
                        Box::new(M::And(vec![
                            M::Not(Box::new(atom(label, vec![x]))),
                            M::Member(y, x1),
                        ])),
                        Box::new(M::Member(x, x1)),
                    ),
                    M::Implies(
                        Box::new(M::And(vec![
                            M::Not(Box::new(atom(label, vec![x]))),
                            M::Member(y, x0),
                        ])),
                        Box::new(M::Member(x, x0)),
                    ),
                ])),
            )),
        )),
    );
    // Initialisation at elements with no outgoing edge.
    let no_successor = |v: FoVar| {
        M::Not(Box::new(M::ExistsFo(
            FoVar(2),
            Box::new(atom(edge, vec![v, FoVar(2)])),
        )))
    };
    let init = M::ForallFo(
        x,
        Box::new(M::And(vec![
            M::Implies(
                Box::new(M::And(vec![
                    no_successor(x),
                    M::Not(Box::new(atom(label, vec![x]))),
                ])),
                Box::new(M::Member(x, x0)),
            ),
            M::Implies(
                Box::new(M::And(vec![no_successor(x), atom(label, vec![x])])),
                Box::new(M::Member(x, x1)),
            ),
        ])),
    );
    // Acceptance: every element with no incoming edge is in X1.
    let no_predecessor = |v: FoVar| {
        M::Not(Box::new(M::ExistsFo(
            FoVar(2),
            Box::new(atom(edge, vec![FoVar(2), v])),
        )))
    };
    let accept = M::ForallFo(
        x,
        Box::new(M::Implies(
            Box::new(no_predecessor(x)),
            Box::new(M::Member(x, x1)),
        )),
    );
    M::ForallSet(
        x0,
        Box::new(M::ForallSet(
            x1,
            Box::new(M::Implies(
                Box::new(M::And(vec![part, transition, init])),
                Box::new(accept),
            )),
        )),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_instance::{encodings, Signature};

    #[test]
    fn first_order_detection() {
        let sig = Signature::builder().relation("R", 1).build();
        let r = sig.relation_by_name("R").unwrap();
        let fo = two_distinct_unary(r);
        assert!(fo.is_first_order());
        let sig2 = Signature::builder()
            .relation("L", 1)
            .relation("E", 2)
            .build();
        let mso = odd_number_of_labels(
            sig2.relation_by_name("L").unwrap(),
            sig2.relation_by_name("E").unwrap(),
        );
        assert!(!mso.is_first_order());
        assert!(mso.free_set_variables().is_empty());
    }

    #[test]
    fn two_distinct_unary_semantics() {
        let sig = Signature::builder().relation("R", 1).build();
        let r = sig.relation_by_name("R").unwrap();
        let formula = two_distinct_unary(r);
        let one = encodings::unary_family_instance(&sig, r, 1);
        let two = encodings::unary_family_instance(&sig, r, 2);
        let five = encodings::unary_family_instance(&sig, r, 5);
        assert!(!formula.holds_on(&one));
        assert!(formula.holds_on(&two));
        assert!(formula.holds_on(&five));
    }

    #[test]
    fn parity_formula_counts_labels_mod_two() {
        let sig = Signature::builder()
            .relation("L", 1)
            .relation("E", 2)
            .build();
        let l = sig.relation_by_name("L").unwrap();
        let e = sig.relation_by_name("E").unwrap();
        let formula = odd_number_of_labels(l, e);
        for n in 1..=5usize {
            let inst = encodings::labelled_path_instance(&sig, l, e, n);
            assert_eq!(formula.holds_on(&inst), n % 2 == 1, "n = {n}");
        }
    }

    #[test]
    fn parity_formula_on_worlds_with_missing_labels() {
        // Remove some L-facts (but keep all E-facts): the formula counts the
        // remaining labels.
        let sig = Signature::builder()
            .relation("L", 1)
            .relation("E", 2)
            .build();
        let l = sig.relation_by_name("L").unwrap();
        let e = sig.relation_by_name("E").unwrap();
        let full = encodings::labelled_path_instance(&sig, l, e, 4);
        let formula = odd_number_of_labels(l, e);
        // Keep only L(0): 1 label -> odd.
        let keep: std::collections::BTreeSet<_> = full
            .facts()
            .filter(|(_, f)| {
                f.relation() == e || f.arguments()[0] == treelineage_instance::Element(0)
            })
            .map(|(id, _)| id)
            .collect();
        let world = full.subinstance(&keep);
        assert!(formula.holds_on(&world));
    }

    #[test]
    fn free_set_variables_and_match_counting() {
        // Formula with one free set variable X: "X contains only R-elements".
        let sig = Signature::builder().relation("R", 1).build();
        let r = sig.relation_by_name("R").unwrap();
        let x = FoVar(0);
        let set = SetVar(0);
        let formula = MsoFormula::ForallFo(
            x,
            Box::new(MsoFormula::Implies(
                Box::new(MsoFormula::Member(x, set)),
                Box::new(MsoFormula::Atom {
                    relation: r,
                    arguments: vec![x],
                }),
            )),
        );
        assert_eq!(formula.free_set_variables().len(), 1);
        let inst = encodings::unary_family_instance(&sig, r, 3);
        // All 8 subsets of a 3-element all-R domain qualify.
        assert_eq!(formula.count_matches_bruteforce(&inst).to_u64(), Some(8));
    }

    #[test]
    fn display_is_reasonable() {
        let sig = Signature::builder().relation("R", 1).build();
        let r = sig.relation_by_name("R").unwrap();
        let shown = two_distinct_unary(r).to_string();
        assert!(shown.contains("∃x0"));
        assert!(shown.contains("¬"));
    }
}
