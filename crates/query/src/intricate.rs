//! Intricate queries and the decision procedure of Lemma 8.6.
//!
//! A UCQ≠ `q` is *n-intricate* (Definition 8.5) if on every line instance
//! with `2n + 2` facts, some minimal match of `q` contains both facts
//! incident to the middle element; `q` is *intricate* if it is
//! `|q|`-intricate. Theorem 8.7 shows that the connected UCQ≠ queries whose
//! OBDDs must blow up on every unbounded-treewidth family are exactly the
//! intricate ones, and Proposition 8.8 / 8.9 show that connected CQ≠ queries
//! and homomorphism-closed queries are never intricate.
//!
//! The decision procedure enumerates all line instances of the prescribed
//! length ((2·#binary relations)^(2n+2) of them) and checks minimal matches
//! on each — exponential in `n` and in the signature, which is fine because
//! queries are fixed and small (the paper only claims a PSPACE bound).

use crate::cq::UnionOfConjunctiveQueries;
use crate::matching;
use std::collections::BTreeSet;
use treelineage_instance::{encodings, FactId, Instance};

/// The two facts of a line instance incident to its middle element
/// (Definition 8.5). For a line instance with `2n + 2` facts these are the
/// facts at 0-based positions `n` and `n + 1`.
pub fn middle_facts(line_length: usize) -> (FactId, FactId) {
    assert!(
        line_length >= 2 && line_length.is_multiple_of(2),
        "line length must be even and >= 2"
    );
    let n = (line_length - 2) / 2;
    (FactId(n), FactId(n + 1))
}

/// Checks whether `query` is `n`-intricate (Definition 8.5): on *every* line
/// instance with `2n + 2` facts, some minimal match contains both middle
/// facts. Panics if the signature is not arity-2 or has no binary relation.
pub fn is_n_intricate(query: &UnionOfConjunctiveQueries, n: usize) -> bool {
    n_intricacy_counterexample(query, n).is_none()
}

/// If `query` is not `n`-intricate, returns a witnessing line instance on
/// which no minimal match contains both middle facts; returns `None` if the
/// query is `n`-intricate.
pub fn n_intricacy_counterexample(query: &UnionOfConjunctiveQueries, n: usize) -> Option<Instance> {
    let signature = query.signature();
    assert!(
        signature.is_arity_two(),
        "intricacy is defined for arity-2 signatures"
    );
    let length = 2 * n + 2;
    let (middle_a, middle_b) = middle_facts(length);
    for line in encodings::all_line_instances(signature, length) {
        let minimal = matching::minimal_matches(query, &line);
        let has_middle_match = minimal
            .iter()
            .any(|m| m.contains(&middle_a) && m.contains(&middle_b));
        if !has_middle_match {
            return Some(line);
        }
    }
    None
}

/// Checks whether `query` is intricate, i.e. `|q|`-intricate (Definition 8.5).
///
/// Note the paper's observation that `n`-intricate implies `m`-intricate for
/// every `m >= n`: to *establish* intricacy it therefore suffices to verify
/// `n`-intricacy for any `n <= |q|` (and callers with large queries should
/// prefer [`is_n_intricate`] with a small `n` — the full check enumerates
/// `(2·#binary)^(2|q|+2)` line instances).
pub fn is_intricate(query: &UnionOfConjunctiveQueries) -> bool {
    is_n_intricate(query, query.size())
}

/// A quick positive test for intricacy: returns `true` if `query` is
/// `n`-intricate for some `n <= limit`, which by monotonicity of intricacy in
/// `n` implies that it is intricate whenever `limit <= |q|`.
pub fn is_intricate_with_witness_level(
    query: &UnionOfConjunctiveQueries,
    limit: usize,
) -> Option<usize> {
    (0..=limit).find(|&n| is_n_intricate(query, n))
}

/// Checks Proposition 8.8's claim on a concrete query: a connected CQ≠ is
/// never intricate. This helper verifies both the hypothesis (connected,
/// single disjunct) and the conclusion via the decision procedure, and is
/// used by tests and by the `tables` experiment binary.
pub fn connected_cq_is_not_intricate(query: &UnionOfConjunctiveQueries) -> bool {
    if query.disjuncts().len() != 1 || !query.is_connected() {
        return false;
    }
    !is_intricate(query)
}

/// Returns the set of fact-id pairs `(F, F')` around the middle of each line
/// instance of the given length that are *covered* by a minimal match of the
/// query — diagnostic output used by the experiment binary to show *why* a
/// query is or is not intricate.
pub fn middle_coverage_report(
    query: &UnionOfConjunctiveQueries,
    n: usize,
) -> Vec<(Instance, bool)> {
    let signature = query.signature();
    let length = 2 * n + 2;
    let (middle_a, middle_b) = middle_facts(length);
    encodings::all_line_instances(signature, length)
        .into_iter()
        .map(|line| {
            let minimal = matching::minimal_matches(query, &line);
            let covered = minimal
                .iter()
                .any(|m| m.contains(&middle_a) && m.contains(&middle_b));
            (line, covered)
        })
        .collect()
}

/// Returns `true` if every minimal match of the query on the given instance
/// has at most one fact — the structural reason homomorphism-closed queries
/// are easy on complete bipartite instances (Proposition 8.9's proof).
pub fn all_minimal_matches_are_singletons(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
) -> bool {
    matching::minimal_matches(query, instance)
        .iter()
        .all(|m| m.len() <= 1)
}

/// Convenience used by several experiments: the set of minimal matches
/// restricted to those containing a given fact.
pub fn minimal_matches_containing(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
    fact: FactId,
) -> BTreeSet<BTreeSet<FactId>> {
    matching::minimal_matches(query, instance)
        .into_iter()
        .filter(|m| m.contains(&fact))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::parse_query;
    use treelineage_instance::Signature;

    fn single_binary() -> Signature {
        Signature::builder().relation("S", 2).build()
    }

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    /// The "path of length 2 in the Gaifman graph" query q_p for a signature
    /// with a single binary relation S: two S-facts sharing an element, with
    /// the outer endpoints distinct. This is the paper's intricate witness
    /// (Theorem 8.1, designed to be 0-intricate).
    fn qp_single_relation() -> crate::cq::UnionOfConjunctiveQueries {
        parse_query(
            &single_binary(),
            "S(x, y), S(y, z), x != z | S(x, y), S(z, y), x != z | S(y, x), S(y, z), x != z",
        )
        .unwrap()
    }

    #[test]
    fn middle_fact_positions() {
        assert_eq!(middle_facts(2), (FactId(0), FactId(1)));
        assert_eq!(middle_facts(8), (FactId(3), FactId(4)));
    }

    #[test]
    fn qp_is_zero_intricate() {
        let qp = qp_single_relation();
        // On every line instance with 2 facts, the two facts share the middle
        // element and their outer endpoints differ, so they form a (minimal)
        // match of one of the disjuncts.
        assert!(is_n_intricate(&qp, 0));
        assert_eq!(is_intricate_with_witness_level(&qp, 2), Some(0));
    }

    #[test]
    fn qp_is_one_intricate_too() {
        // n-intricate implies m-intricate for m >= n.
        let qp = qp_single_relation();
        assert!(is_n_intricate(&qp, 1));
    }

    #[test]
    fn unsafe_but_non_intricate_query() {
        // The classic unsafe query R(x), S(x, y), T(y) (Section 8.2's
        // motivating example) is not intricate: line instances contain no
        // unary facts, so it has no matches at all on them.
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        assert!(!is_n_intricate(&q, 0));
        assert!(!is_intricate(&q));
        let counterexample = n_intricacy_counterexample(&q, 0).unwrap();
        assert_eq!(counterexample.fact_count(), 2);
    }

    #[test]
    fn connected_cq_with_disequality_is_not_intricate() {
        // Proposition 8.8: connected CQ≠ are never intricate. Check a few.
        for text in ["S(x, y), S(y, z), x != z", "S(x, y)", "S(x, y), S(y, z)"] {
            let q = parse_query(&single_binary(), text).unwrap();
            assert!(
                connected_cq_is_not_intricate(&q),
                "query {text} should not be intricate"
            );
        }
    }

    #[test]
    fn single_fact_query_is_not_intricate() {
        // Queries with |q| < 2 cannot be intricate (remark after Def. 8.5):
        // a single-atom query has singleton minimal matches only.
        let q = parse_query(&single_binary(), "S(x, y)").unwrap();
        assert!(!is_intricate(&q));
    }

    #[test]
    fn homomorphism_closed_queries_have_singleton_matches_on_bipartite() {
        // Proposition 8.9's mechanism: on the complete bipartite directed
        // instance, every minimal match of a UCQ is a single fact.
        let sig = single_binary();
        let s = sig.relation_by_name("S").unwrap();
        let inst = encodings::complete_bipartite_instance(&sig, s, 3);
        for text in [
            "S(x, y)",
            "S(x, y), S(x, z)",
            "S(x, y), S(z, y) | S(x, y), S(x, w)",
        ] {
            let q = parse_query(&sig, text).unwrap();
            if matching::satisfied(&q, &inst) {
                assert!(
                    all_minimal_matches_are_singletons(&q, &inst),
                    "query {text}"
                );
            }
        }
    }

    #[test]
    fn middle_coverage_report_is_exhaustive() {
        let qp = qp_single_relation();
        let report = middle_coverage_report(&qp, 0);
        // One binary relation, two directions, two facts: 4 line instances.
        assert_eq!(report.len(), 4);
        assert!(report.iter().all(|(_, covered)| *covered));
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let report2 = middle_coverage_report(&q, 0);
        assert!(report2.iter().all(|(_, covered)| !*covered));
    }

    #[test]
    fn minimal_matches_containing_fact() {
        let sig = single_binary();
        let qp = qp_single_relation();
        let line = encodings::all_line_instances(&sig, 2)[0].clone();
        let with_first = minimal_matches_containing(&qp, &line, FactId(0));
        assert_eq!(with_first.len(), 1);
    }
}
