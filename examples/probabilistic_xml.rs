//! Probabilistic XML without data values (the use case cited in the paper's
//! introduction): a document tree where some nodes are uncertain, queried by
//! a bottom-up tree automaton. The provenance circuit of the automaton run
//! (Proposition 3.1 of [2]) is a d-DNNF when the automaton is deterministic,
//! so the acceptance probability is computed in linear time (Theorem 6.11's
//! mechanism).
//!
//! Run with `cargo run --example probabilistic_xml`.

use treelineage_automata::{
    parity_automaton, provenance_circuit, BinaryTree, NodeId, UncertainTree,
};
use treelineage_circuit::Dnnf;
use treelineage_num::Rational;

fn main() {
    // A document with 8 optional <item> leaves under a chain of containers.
    // Each leaf i is present with probability 1/(i+2); the query asks whether
    // the number of present items is odd (an MSO property of the tree).
    let leaves = 8usize;
    let tree = BinaryTree::comb(&vec![0; leaves], 2);
    let mut doc = UncertainTree::certain(tree);
    let mut event = 0;
    for node in 0..doc.tree().node_count() {
        if doc.tree().is_leaf(NodeId(node)) {
            doc.set_event(NodeId(node), event, 1, 0);
            event += 1;
        }
    }

    let automaton = parity_automaton(2);
    let circuit = provenance_circuit(&automaton, &doc);
    println!("provenance circuit size : {}", circuit.size());

    let ddnnf =
        Dnnf::from_trusted_circuit(circuit).expect("deterministic automaton gives a d-DNNF");
    let prob = |e: usize| Rational::from_ratio_u64(1, e as u64 + 2);
    let p = ddnnf.probability(&prob);
    println!("P(odd number of items)  : {} ≈ {:.4}", p, p.to_f64());

    // Cross-check against brute-force enumeration of the 2^8 worlds.
    let brute = treelineage_automata::acceptance_probability_bruteforce(&automaton, &doc, &prob);
    assert_eq!(p, brute);
    println!("verified against world enumeration ✓");
}
