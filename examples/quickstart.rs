//! Quickstart: build an uncertain database, ask for the lineage of a query,
//! and compute its exact probability — the end-to-end pipeline of
//! Theorem 3.2.
//!
//! Run with `cargo run --example quickstart`.

use treelineage::prelude::*;

fn main() {
    // A small movie-style database: Directed(person, film), Won(film).
    let sig = Signature::builder()
        .relation("Directed", 2)
        .relation("Won", 1)
        .build();
    let mut inst = Instance::new(sig.clone());
    let directed = [(1u64, 10u64), (1, 11), (2, 11), (3, 12)];
    for (p, f) in directed {
        inst.add_fact_by_name("Directed", &[p, f]);
    }
    for f in [10u64, 11] {
        inst.add_fact_by_name("Won", &[f]);
    }

    // "Some person directed a film that won": Directed(x, y), Won(y).
    let q = parse_query(&sig, "Directed(x, y), Won(y)").unwrap();

    // Lineage representations (Definition 6.1, Theorems 6.3 / 6.5 / 6.11).
    let builder = LineageBuilder::new(&q, &inst).unwrap();
    let circuit = builder.circuit();
    let obdd = builder.obdd();
    let ddnnf = builder.ddnnf();
    println!("lineage circuit size : {}", circuit.size());
    println!(
        "lineage OBDD         : width {}, size {}",
        obdd.width(),
        obdd.size()
    );
    println!("lineage d-DNNF size  : {}", ddnnf.size());
    println!("satisfying worlds    : {}", obdd.count_models());

    // Probability evaluation on a tuple-independent database (Theorem 3.2).
    let probabilities: Vec<f64> = (0..inst.fact_count())
        .map(|i| [0.5, 0.75, 0.25][i % 3])
        .collect();
    let valuation = ProbabilityValuation::from_f64(&inst, &probabilities);
    let evaluator = ProbabilityEvaluator::new(&inst, &valuation);
    let p = evaluator.query_probability(&q).unwrap();
    println!("P(query)             : {} ≈ {:.4}", p, p.to_f64());

    // The brute-force possible-worlds semantics agrees (Definition 3.1).
    let brute = evaluator.query_probability_bruteforce(&q);
    assert_eq!(p, brute);
    println!("verified against the possible-worlds oracle ✓");
}
