//! The OBDD-size dichotomy of Section 8: the intricate query q_p has
//! exploding OBDD width on unbounded-treewidth families (grids) but constant
//! width on bounded-treewidth ones (chains); non-intricate queries are easy
//! on some unbounded-treewidth family. Also runs the matching-counting
//! reduction behind Theorem 4.2.
//!
//! Run with `cargo run --release --example obdd_dichotomy`.

use treelineage_graph::generators;
use treelineage_hardness as hardness;
use treelineage_instance::Signature;
use treelineage_query::intricate;

fn main() {
    let sig = Signature::builder().relation("S", 2).build();
    let qp = hardness::qp(&sig);
    println!("q_p = {qp}");
    println!(
        "q_p is 0-intricate: {}\n",
        intricate::is_n_intricate(&qp, 0)
    );

    println!("{:>14} {:>10} {:>12}", "instance", "facts", "OBDD width");
    for n in [2usize, 3, 4, 5] {
        let (w, _) = hardness::obdd_width_of_qp_on_grid(n);
        println!(
            "{:>14} {:>10} {:>12}",
            format!("{n}x{n} grid"),
            2 * n * (n - 1),
            w
        );
    }
    for len in [20usize, 40, 80] {
        let (w, _) = hardness::obdd_width_of_qp_on_chain(len);
        println!("{:>14} {:>10} {:>12}", format!("chain {len}"), len, w);
    }

    println!("\nMatching-counting reduction (Theorem 4.2's engine):");
    for (name, graph) in [
        ("prism CL_3", generators::circular_ladder_graph(3)),
        ("prism CL_4", generators::circular_ladder_graph(4)),
    ] {
        let r = hardness::matching_reduction(&graph);
        println!(
            "  {name}: #matchings from P(¬q_p) = {}, direct DP = {}",
            r.matchings_from_probability, r.matchings_direct
        );
        assert_eq!(
            r.matchings_from_probability.to_decimal_string(),
            r.matchings_direct.to_decimal_string()
        );
    }
    println!("\nBoth sides agree: probability evaluation of q_p counts matchings ✓");
}
