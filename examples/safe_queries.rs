//! Safe queries and unfoldings (Section 9): an inversion-free UCQ "sees" any
//! instance as a bounded tree-depth one — the unfolding preserves the lineage
//! exactly while making the Gaifman graph a shallow forest, which explains
//! the constant-width OBDDs of inversion-free queries (Theorem 9.7 + 9.6).
//!
//! The lineage-preservation consequence (Lemma 9.5: equal query probability
//! before and after unfolding) is checked here *constructively* through the
//! automaton backend (`LineageBackend::Automaton`, the Section 6 pipeline):
//! earlier revisions had to shrink this instance to 16 facts because the
//! brute-force `lineage_preserved` oracle enumerates all `2^facts` worlds
//! (capped at 18); the automaton pipeline evaluates the full 24-fact star
//! join exactly, and the oracle stays behind for differential tests on
//! small instances only.
//!
//! Run with `cargo run --example safe_queries`.

use treelineage::prelude::*;
use treelineage_safe as safe;

fn main() {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    // A "star join" instance where many S-facts share their second attribute,
    // creating a dense Gaifman graph. 6 + 6·3 = 24 facts.
    let n = 6u64;
    let mut inst = Instance::new(sig.clone());
    for a in 1..=n {
        inst.add_fact_by_name("R", &[a]);
        for c in 1..=3u64 {
            inst.add_fact_by_name("S", &[a, n + c]);
        }
    }
    let q = parse_query(&sig, "R(x), S(x, y)").unwrap();

    println!("query                  : {}", q);
    println!("facts                  : {}", inst.fact_count());
    println!(
        "hierarchical           : {}",
        q.disjuncts()[0].is_hierarchical()
    );
    println!("inversion-free         : {}", safe::is_inversion_free(&q));
    println!(
        "safe (sjf dichotomy)   : {}",
        safe::is_safe_self_join_free_cq(&q.disjuncts()[0])
    );

    let (w_before, _, _) = inst.treewidth_upper_bound();
    let unfolding = safe::unfold_for_query(&q, &inst).expect("inversion-free");
    let (w_after, _, _) = unfolding.instance.treewidth_upper_bound();
    println!("treewidth before/after : {} / {}", w_before, w_after);
    println!("tree-depth of unfolding: {}", unfolding.tree_depth);
    assert!(unfolding.tree_depth <= sig.max_arity());

    // Lemma 9.5, checked exactly at 24 facts: the query probability on the
    // original instance — computed by the automaton pipeline, which never
    // enumerates matches — equals the probability on the unfolded instance
    // (computed by the shared dd engine over its constant-width order). The
    // unfolding's fact map is a bijection, so a uniform valuation induces
    // the same tuple-independent distribution on both sides.
    let p_fact = Rational::from_ratio_u64(1, 3);
    let valuation = ProbabilityValuation::uniform(&inst, p_fact.clone());
    let automaton_eval =
        ProbabilityEvaluator::new(&inst, &valuation).with_backend(LineageBackend::Automaton);
    let p_original = automaton_eval.query_probability(&q).unwrap();
    let unfolded_valuation = ProbabilityValuation::uniform(&unfolding.instance, p_fact);
    let p_unfolded = ProbabilityEvaluator::new(&unfolding.instance, &unfolded_valuation)
        .query_probability(&q)
        .unwrap();
    assert_eq!(p_original, p_unfolded);
    println!("P(q), original, via automaton pipeline: {}", p_original);
    println!("P(q), unfolding, via shared dd engine : {}", p_unfolded);
    println!("lineage preserved      : true (equal exact probabilities)");

    // The automaton pipeline's artifact, for the curious.
    let lineage = LineageBuilder::new(&q, &inst)
        .unwrap()
        .automaton_lineage()
        .unwrap();
    println!(
        "automaton pipeline     : {} states, {} tree nodes, d-SDNNF size {}",
        lineage.automaton_states(),
        lineage.tree_nodes(),
        lineage.size()
    );

    // … and on the unfolded, bounded-pathwidth instance the OBDD has constant
    // width (Theorems 6.7 / 9.6).
    let obdd = LineageBuilder::new(&q, &unfolding.instance).unwrap().obdd();
    println!("OBDD width (unfolded)  : {}", obdd.width());

    // Contrast with the classic unsafe query, which is not inversion-free.
    let rst = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let unsafe_q = parse_query(&rst, "R(x), S(x, y), T(y)").unwrap();
    println!(
        "R(x),S(x,y),T(y) inversion-free: {}",
        safe::is_inversion_free(&unsafe_q)
    );
}
