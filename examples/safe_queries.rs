//! Safe queries and unfoldings (Section 9): an inversion-free UCQ "sees" any
//! instance as a bounded tree-depth one — the unfolding preserves the lineage
//! exactly while making the Gaifman graph a shallow forest, which explains
//! the constant-width OBDDs of inversion-free queries (Theorem 9.7 + 9.6).
//!
//! Run with `cargo run --example safe_queries`.

use treelineage::prelude::*;
use treelineage_safe as safe;

fn main() {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .build();
    // A "star join" instance where many S-facts share their second attribute,
    // creating a dense Gaifman graph. 4 + 4·3 = 16 facts: the
    // `lineage_preserved` oracle below brute-forces all 2^facts worlds and
    // is capped at 18 facts.
    let n = 4u64;
    let mut inst = Instance::new(sig.clone());
    for a in 1..=n {
        inst.add_fact_by_name("R", &[a]);
        for c in 1..=3u64 {
            inst.add_fact_by_name("S", &[a, n + c]);
        }
    }
    let q = parse_query(&sig, "R(x), S(x, y)").unwrap();

    println!("query                  : {}", q);
    println!(
        "hierarchical           : {}",
        q.disjuncts()[0].is_hierarchical()
    );
    println!("inversion-free         : {}", safe::is_inversion_free(&q));
    println!(
        "safe (sjf dichotomy)   : {}",
        safe::is_safe_self_join_free_cq(&q.disjuncts()[0])
    );

    let (w_before, _, _) = inst.treewidth_upper_bound();
    let unfolding = safe::unfold_for_query(&q, &inst).expect("inversion-free");
    let (w_after, _, _) = unfolding.instance.treewidth_upper_bound();
    println!("treewidth before/after : {} / {}", w_before, w_after);
    println!("tree-depth of unfolding: {}", unfolding.tree_depth);
    assert!(unfolding.tree_depth <= sig.max_arity());

    // The lineage is preserved (Lemma 9.5) …
    assert!(safe::lineage_preserved(&q, &inst, &unfolding));
    println!("lineage preserved      : true");

    // … and on the unfolded, bounded-pathwidth instance the OBDD has constant
    // width (Theorems 6.7 / 9.6).
    let obdd = LineageBuilder::new(&q, &unfolding.instance).unwrap().obdd();
    println!("OBDD width (unfolded)  : {}", obdd.width());

    // Contrast with the classic unsafe query, which is not inversion-free.
    let rst = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let unsafe_q = parse_query(&rst, "R(x), S(x, y), T(y)").unwrap();
    println!(
        "R(x),S(x,y),T(y) inversion-free: {}",
        safe::is_inversion_free(&unsafe_q)
    );
}
