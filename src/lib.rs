//! Umbrella package for the `treelineage` workspace: hosts the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/`. All functionality lives in the `crates/` members; see the
//! workspace README and DESIGN.md.
